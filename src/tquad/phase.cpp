#include "tquad/phase.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tq::tquad {

namespace {

/// Disjoint-set forest for single-linkage clustering of kernels.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Size of the intersection of two sorted index vectors.
std::size_t intersection_size(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  std::size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

CoreSpan core_span(const KernelBandwidth& kernel, double trim) {
  CoreSpan span;
  const auto& series = kernel.series;
  span.active_slices = series.size();
  if (series.empty()) return span;
  const std::size_t n = series.size();
  std::size_t lo = static_cast<std::size_t>(std::floor(trim * static_cast<double>(n)));
  std::size_t hi = n - 1 - lo;
  if (lo > hi) {
    lo = 0;
    hi = n - 1;
  }
  span.begin = series[lo].slice;
  span.end = series[hi].slice;
  return span;
}

std::vector<Phase> detect_phases(const TQuadTool& tool, const PhaseOptions& options) {
  const BandwidthRecorder& recorder = tool.bandwidth();
  const std::uint64_t slices = recorder.max_slice() + 1;

  // Collect the kernels that are reported and active at all.
  std::vector<std::uint32_t> active;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    if (tool.reported(k) && recorder.kernel(k).active_slices() > 0) {
      active.push_back(k);
    }
  }
  if (active.empty()) return {};

  // 1. Per-kernel sorted sets of active windows at two granularities: fine
  // (placing briefly-active kernels) and coarse (comparing kernels that
  // interleave within one application iteration).
  auto build_sets = [&](std::uint64_t window_count) {
    const std::uint64_t windows =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(window_count, slices));
    const double per_window =
        static_cast<double>(slices) / static_cast<double>(windows);
    std::vector<std::vector<std::uint32_t>> sets(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      auto& set = sets[i];
      for (const SliceSample& sample : recorder.kernel(active[i]).series) {
        const auto w = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(static_cast<double>(sample.slice) / per_window),
            windows - 1));
        if (set.empty() || set.back() != w) set.push_back(w);
      }
    }
    return sets;
  };
  const auto fine_sets = build_sets(options.windows);
  const auto coarse_sets =
      build_sets(std::max<std::uint64_t>(1, options.windows / options.coarse_factor));

  // 2+3. Pairwise similarity and single-linkage merging.
  const std::size_t tiny_limit = std::max<std::size_t>(
      3, static_cast<std::size_t>(options.tiny_fraction *
                                  static_cast<double>(options.windows)));
  UnionFind clusters(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = i + 1; j < active.size(); ++j) {
      const std::size_t fine_min =
          std::min(fine_sets[i].size(), fine_sets[j].size());
      double sim;
      if (fine_min <= tiny_limit) {
        // A briefly-active kernel merges with a partner only when its
        // activity falls inside the partner's *interquartile* activity
        // region. This keeps initialisation helpers apart from steady-state
        // kernels that merely warmed up during initialisation (our ffw calls
        // fft1d, but fft1d's activity mass lies in the processing loop).
        const auto& tiny =
            fine_sets[i].size() <= fine_sets[j].size() ? fine_sets[i] : fine_sets[j];
        const auto& other =
            fine_sets[i].size() <= fine_sets[j].size() ? fine_sets[j] : fine_sets[i];
        if (tiny.empty() || other.empty()) {
          sim = 0.0;
        } else {
          const std::size_t n = other.size();
          const std::uint32_t lo = other[(n - 1) / 4];
          const std::uint32_t hi = other[(3 * (n - 1)) / 4];
          std::size_t inside = 0;
          for (std::uint32_t w : tiny) {
            if (w >= lo && w <= hi) ++inside;
          }
          sim = static_cast<double>(inside) / static_cast<double>(tiny.size());
        }
      } else {
        // Jaccard on coarse windows for substantially-active kernels.
        const auto& a = coarse_sets[i];
        const auto& b = coarse_sets[j];
        const std::size_t inter = intersection_size(a, b);
        const std::size_t uni = a.size() + b.size() - inter;
        sim = uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
      }
      if (sim >= options.merge_threshold) clusters.merge(i, j);
    }
  }

  // 4. Build phases from clusters.
  std::vector<Phase> phases;
  std::vector<std::size_t> cluster_of(active.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const std::size_t root = clusters.find(i);
    auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      roots.push_back(root);
      phases.emplace_back();
      cluster_of[i] = phases.size() - 1;
    } else {
      cluster_of[i] = static_cast<std::size_t>(it - roots.begin());
    }
    phases[cluster_of[i]].kernels.push_back(active[i]);
  }

  const auto total = static_cast<double>(slices);
  for (Phase& phase : phases) {
    std::uint64_t begin = ~0ull;
    std::uint64_t end = 0;
    std::uint64_t seg_begin = ~0ull;
    std::uint64_t seg_end = 0;
    for (std::uint32_t k : phase.kernels) {
      const CoreSpan span = core_span(recorder.kernel(k), options.core_trim);
      begin = std::min(begin, span.begin);
      end = std::max(end, span.end);
      seg_begin = std::min(seg_begin, recorder.kernel(k).first_active_slice());
      seg_end = std::max(seg_end, recorder.kernel(k).last_active_slice());
    }
    phase.span_begin = begin;
    phase.span_end = end;
    phase.segment_begin = seg_begin;
    phase.segment_end = seg_end;
    phase.span_fraction = static_cast<double>(end - begin + 1) / total;
    std::sort(phase.kernels.begin(), phase.kernels.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return recorder.kernel(a).first_active_slice() <
                       recorder.kernel(b).first_active_slice();
              });
  }
  // Order phases by (span begin, span end): an enclosing driver phase sorts
  // after the short early phases it contains.
  std::sort(phases.begin(), phases.end(), [](const Phase& a, const Phase& b) {
    if (a.span_begin != b.span_begin) return a.span_begin < b.span_begin;
    return a.span_end < b.span_end;
  });
  return phases;
}

std::string describe_phases(const TQuadTool& tool, const std::vector<Phase>& phases) {
  std::ostringstream out;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& phase = phases[i];
    out << "phase " << (i + 1) << ": slices " << phase.span_begin << "-"
        << phase.span_end << " (" << static_cast<int>(phase.span_fraction * 100.0 + 0.5)
        << "% of run), kernels:";
    for (std::uint32_t k : phase.kernels) {
      out << ' ' << tool.kernel_name(k);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace tq::tquad
