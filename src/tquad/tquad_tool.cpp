#include "tquad/tquad_tool.hpp"

#include "vm/stack_addr.hpp"

namespace tq::tquad {

TQuadTool::TQuadTool(const vm::Program& program, Options options)
    : program_(program),
      options_(options),
      stack_(program, options.library_policy),
      recorder_(program.functions().size(), options.slice_interval),
      activity_(program.functions().size()) {}

TQuadTool::TQuadTool(pin::Engine& engine, Options options)
    : TQuadTool(engine.program(), options) {
  engine.add_rtn_instrument_function([this](pin::Rtn& rtn) { instrument_rtn(rtn); });
  engine.add_ins_instrument_function([this](pin::Ins& ins) { instrument_ins(ins); });
  engine.add_fini_function([this](std::uint64_t retired) { account_fini(retired); });
}

void TQuadTool::instrument_rtn(pin::Rtn& rtn) {
  rtn.insert_entry_call(&TQuadTool::enter_fc, this);
}

void TQuadTool::instrument_ins(pin::Ins& ins) {
  // Per-instruction tick first: the instruction is attributed to the kernel
  // on top of the stack *before* any pop this instruction performs.
  ins.insert_call(&TQuadTool::on_instr_tick, this);
  if (ins.is_memory_read()) {
    ins.insert_predicated_call(&TQuadTool::increase_read, this);
  }
  if (ins.is_memory_write()) {
    ins.insert_predicated_call(&TQuadTool::increase_write, this);
  }
  if (options_.count_prefetch && ins.is_prefetch()) {
    // Prefetches carry no architectural data; when asked to, count them as
    // reads (ablation knob — the paper's tool always skips them).
    ins.insert_predicated_call(&TQuadTool::prefetch_read, this);
  }
  if (ins.is_ret()) {
    ins.insert_predicated_call(&TQuadTool::on_ret, this);
  }
}

// ---- mode-independent accounting ----------------------------------------------

void TQuadTool::account_enter(std::uint32_t func, bool tracked) {
  if (tracked) ++activity_[func].calls;
}

void TQuadTool::account_tick(std::uint32_t kernel) {
  if (kernel == kNoKernel) {
    ++unattributed_;
    return;
  }
  ++activity_[kernel].instructions;
}

void TQuadTool::account_access(std::uint32_t kernel, std::uint64_t retired,
                               std::uint32_t size, bool is_read, bool is_stack) {
  recorder_.on_access(kernel, retired, size, is_read, is_stack);
}

void TQuadTool::account_fini(std::uint64_t retired) {
  total_retired_ = retired;
  recorder_.finish();
}

// ---- standalone trampolines -----------------------------------------------------

void TQuadTool::enter_fc(void* tool, const pin::RtnArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  self.stack_.on_enter(args.func);
  self.account_enter(args.func, self.stack_.tracked(args.func));
}

void TQuadTool::increase_read(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;  // paper: return immediately on prefetch
  auto& self = *static_cast<TQuadTool*>(tool);
  const std::uint32_t kernel = self.stack_.top();
  if (kernel == kNoKernel) return;
  self.account_access(kernel, args.retired, args.read_size, /*is_read=*/true,
                      vm::is_stack_addr(args.read_ea, args.sp));
}

void TQuadTool::increase_write(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;
  auto& self = *static_cast<TQuadTool*>(tool);
  const std::uint32_t kernel = self.stack_.top();
  if (kernel == kNoKernel) return;
  self.account_access(kernel, args.retired, args.write_size, /*is_read=*/false,
                      vm::is_stack_addr(args.write_ea, args.sp));
}

void TQuadTool::prefetch_read(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  const std::uint32_t kernel = self.stack_.top();
  if (kernel == kNoKernel) return;
  self.account_access(kernel, args.retired, args.read_size, /*is_read=*/true,
                      vm::is_stack_addr(args.read_ea, args.sp));
}

void TQuadTool::on_ret(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  self.stack_.on_ret(args.func);
}

void TQuadTool::on_instr_tick(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  self.account_tick(self.stack_.top());
  (void)args;
}

// ---- session-mode consumer ------------------------------------------------------

void TQuadTool::on_kernel_enter(const session::EnterEvent& event) {
  account_enter(event.func, event.tracked);
}

void TQuadTool::on_tick(const session::TickEvent& event) {
  account_tick(event.kernel);
}

void TQuadTool::on_tick_run(const session::TickRunEvent& run) {
  if (run.kernel == kNoKernel) {
    unattributed_ += run.count;
  } else {
    activity_[run.kernel].instructions += run.count;
  }
}

void TQuadTool::on_access(const session::AccessEvent& event) {
  if (event.is_prefetch && !options_.count_prefetch) return;
  if (event.kernel == kNoKernel) return;
  account_access(event.kernel, event.retired, event.size, event.is_read,
                 event.is_stack);
}

void TQuadTool::on_session_end(std::uint64_t total_retired) {
  account_fini(total_retired);
}

}  // namespace tq::tquad
