#include "tquad/tquad_tool.hpp"

namespace tq::tquad {

TQuadTool::TQuadTool(pin::Engine& engine, Options options)
    : engine_(engine),
      options_(options),
      stack_(engine.program(), options.library_policy),
      recorder_(engine.program().functions().size(), options.slice_interval),
      activity_(engine.program().functions().size()) {
  engine_.add_rtn_instrument_function([this](pin::Rtn& rtn) { instrument_rtn(rtn); });
  engine_.add_ins_instrument_function([this](pin::Ins& ins) { instrument_ins(ins); });
  engine_.add_fini_function([this](std::uint64_t retired) { fini(retired); });
}

void TQuadTool::instrument_rtn(pin::Rtn& rtn) {
  rtn.insert_entry_call(&TQuadTool::enter_fc, this);
}

void TQuadTool::instrument_ins(pin::Ins& ins) {
  // Per-instruction tick first: the instruction is attributed to the kernel
  // on top of the stack *before* any pop this instruction performs.
  ins.insert_call(&TQuadTool::on_tick, this);
  if (ins.is_memory_read()) {
    ins.insert_predicated_call(&TQuadTool::increase_read, this);
  }
  if (ins.is_memory_write()) {
    ins.insert_predicated_call(&TQuadTool::increase_write, this);
  }
  if (options_.count_prefetch && ins.is_prefetch()) {
    // Prefetches carry no architectural data; when asked to, count them as
    // reads (ablation knob — the paper's tool always skips them).
    ins.insert_predicated_call(&TQuadTool::prefetch_read, this);
  }
  if (ins.is_ret()) {
    ins.insert_predicated_call(&TQuadTool::on_ret, this);
  }
}

void TQuadTool::enter_fc(void* tool, const pin::RtnArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  self.stack_.on_enter(args.func);
  if (self.stack_.tracked(args.func)) {
    ++self.activity_[args.func].calls;
  }
}

void TQuadTool::increase_read(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;  // paper: return immediately on prefetch
  auto& self = *static_cast<TQuadTool*>(tool);
  const std::uint32_t kernel = self.stack_.top();
  if (kernel == kNoKernel) return;
  self.recorder_.on_access(kernel, args.retired, args.read_size, /*is_read=*/true,
                           is_stack_addr(args.read_ea, args.sp));
}

void TQuadTool::increase_write(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;
  auto& self = *static_cast<TQuadTool*>(tool);
  const std::uint32_t kernel = self.stack_.top();
  if (kernel == kNoKernel) return;
  self.recorder_.on_access(kernel, args.retired, args.write_size, /*is_read=*/false,
                           is_stack_addr(args.write_ea, args.sp));
}

void TQuadTool::prefetch_read(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  const std::uint32_t kernel = self.stack_.top();
  if (kernel == kNoKernel) return;
  self.recorder_.on_access(kernel, args.retired, args.read_size, /*is_read=*/true,
                           is_stack_addr(args.read_ea, args.sp));
}

void TQuadTool::on_ret(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  self.stack_.on_ret(args.func);
}

void TQuadTool::on_tick(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<TQuadTool*>(tool);
  const std::uint32_t kernel = self.stack_.top();
  if (kernel == kNoKernel) {
    ++self.unattributed_;
    return;
  }
  ++self.activity_[kernel].instructions;
  (void)args;
}

void TQuadTool::fini(std::uint64_t retired) {
  total_retired_ = retired;
  recorder_.finish();
}

}  // namespace tq::tquad
