// Time-sliced memory-bandwidth accounting — the heart of tQUAD.
//
// The time base is the retired-instruction count; a *time slice* is a span
// of `slice_interval` instructions (the paper sweeps 5'000 .. 1e8). For each
// kernel and each slice in which it touches memory, the recorder keeps bytes
// read and written, each split into stack-area and non-stack portions, so a
// single run answers every include/exclude-stack question the paper's
// separate runs answer.
//
// Storage is sparse: kernels accumulate into a current-slice buffer that is
// flushed into a (slice, counters) series when the slice advances — memory
// stays proportional to *active* kernel-slices, not to kernels × slices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace tq::tquad {

/// Byte counters for one kernel in one slice. "incl" counts every access;
/// "excl" counts only non-stack accesses (paper: stack area excluded).
struct SliceCounters {
  std::uint64_t read_incl = 0;
  std::uint64_t read_excl = 0;
  std::uint64_t write_incl = 0;
  std::uint64_t write_excl = 0;

  bool empty() const noexcept {
    return read_incl == 0 && write_incl == 0;
  }
  void clear() noexcept { *this = SliceCounters{}; }
  void merge(const SliceCounters& other) noexcept {
    read_incl += other.read_incl;
    read_excl += other.read_excl;
    write_incl += other.write_incl;
    write_excl += other.write_excl;
  }
};

/// One flushed sample: kernel was active in `slice` with these counters.
struct SliceSample {
  std::uint64_t slice = 0;
  SliceCounters counters;
};

/// Per-kernel bandwidth series plus lifetime totals.
struct KernelBandwidth {
  std::vector<SliceSample> series;  ///< ascending by slice; only active slices
  SliceCounters totals;

  std::uint64_t first_active_slice() const noexcept {
    return series.empty() ? 0 : series.front().slice;
  }
  std::uint64_t last_active_slice() const noexcept {
    return series.empty() ? 0 : series.back().slice;
  }
  /// Number of slices in which the kernel touched memory (activity span
  /// column of Table IV).
  std::uint64_t active_slices() const noexcept { return series.size(); }

  /// Fold `other` (same kernel, same slice interval) into this series:
  /// samples for the same slice merge their counters, distinct slices
  /// interleave in ascending order. The operation is associative and
  /// commutative, so block-range shards of one trace merge into exactly
  /// the whole-trace series regardless of shard boundaries or order — the
  /// farm's fleet aggregation depends on that.
  void merge(const KernelBandwidth& other);
};

/// Records per-kernel, per-slice byte counts.
class BandwidthRecorder {
 public:
  BandwidthRecorder(std::size_t kernel_count, std::uint64_t slice_interval);

  std::uint64_t slice_interval() const noexcept { return slice_interval_; }

  /// Account a memory access of `bytes` by `kernel` at instruction-time
  /// `retired`. `is_stack` follows the SP-relative classification.
  void on_access(std::uint32_t kernel, std::uint64_t retired, std::uint32_t bytes,
                 bool is_read, bool is_stack);

  /// Flush all open slice buffers; call once at program end.
  void finish();

  const KernelBandwidth& kernel(std::uint32_t id) const {
    TQUAD_CHECK(id < kernels_.size(), "kernel id out of range");
    return kernels_[id];
  }
  std::size_t kernel_count() const noexcept { return kernels_.size(); }

  /// Highest slice index seen (so reports know the timeline length).
  std::uint64_t max_slice() const noexcept { return max_slice_; }

 private:
  struct Open {
    std::uint64_t slice = kNone;
    SliceCounters counters;
    static constexpr std::uint64_t kNone = ~0ull;
  };

  std::vector<KernelBandwidth> kernels_;
  std::vector<Open> open_;
  std::uint64_t slice_interval_;
  std::uint64_t max_slice_ = 0;
  bool finished_ = false;
};

}  // namespace tq::tquad
