// The internal call stack tQUAD maintains.
//
// Pin gives a run-time tool no call graph, so the paper's tool rebuilds one
// dynamically: routine entries push (EnterFC, Figure 5) and return
// instructions pop (Instruction() "monitors instructions for the return from
// a function to maintain the integrity of the internal call stack",
// Section IV-C). Every memory access and retired instruction is attributed
// to the kernel on top of this stack.
//
// Library/OS routines are handled per the tool's third command-line option:
//   * kExclude          — not pushed; while such a routine runs with no
//                         main-image frame above it, accesses are discarded
//                         ("exclusion of memory bandwidth usage data caused
//                         by OS and library routine calls").
//   * kAttributeToCaller— not pushed; their accesses accrue to the nearest
//                         main-image caller still on the stack.
//   * kTrack            — pushed and reported like main-image kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "vm/program.hpp"

namespace tq::tquad {

/// How non-main-image routines participate in attribution.
enum class LibraryPolicy : std::uint8_t {
  kExclude,
  kAttributeToCaller,
  kTrack,
};

/// Sentinel kernel id meaning "no attributable kernel".
inline constexpr std::uint32_t kNoKernel = 0xffffffffu;

/// Dynamically maintained call stack of kernel (function) ids.
class CallStack {
 public:
  CallStack(const vm::Program& program, LibraryPolicy policy);

  /// Routine entry (EnterFC). `func` is the program's function id.
  void on_enter(std::uint32_t func);

  /// A return instruction executed inside `func`.
  void on_ret(std::uint32_t func);

  /// Kernel currently charged for accesses, or kNoKernel.
  ///
  /// Under kExclude, an untracked routine *suspends* attribution: entering
  /// it pushes an opaque marker so accesses are discarded until it returns.
  std::uint32_t top() const noexcept {
    if (frames_.empty()) return kNoKernel;
    const std::uint32_t func = frames_.back();
    return excluded_[func] ? kNoKernel : func;
  }

  std::size_t depth() const noexcept { return frames_.size(); }
  std::size_t max_depth() const noexcept { return max_depth_; }

  /// Number of pops that found a mismatching top (integrity diagnostics;
  /// zero on well-formed runs).
  std::uint64_t mismatched_pops() const noexcept { return mismatched_pops_; }

  /// Whether `func` is pushed/reported under the current policy.
  bool tracked(std::uint32_t func) const noexcept { return tracked_[func]; }

 private:
  std::vector<std::uint32_t> frames_;
  std::vector<bool> tracked_;   // by function id
  std::vector<bool> excluded_;  // pushed as suspension markers
  LibraryPolicy policy_;
  std::size_t max_depth_ = 0;
  std::uint64_t mismatched_pops_ = 0;
};

}  // namespace tq::tquad
