// Multi-pass bandwidth consensus (the paper's Table IV methodology).
//
// "The average memory bandwidth usage is calculated over several passes with
// different time slices. ... For some of the kernels in Table IV, the upper
// bounds are specified. This is due to the fact that slight inconsistencies
// in the measurements of the overall time slices were detected in the
// experiments." (Section V-B)
//
// BandwidthConsensus accumulates per-kernel bandwidth statistics from
// multiple tQUAD passes (typically at different slice intervals) and reports
// the cross-pass mean of each bytes-per-instruction column, flagging kernels
// whose measurements disagree beyond a tolerance — exactly the "<" upper
// bounds of the paper's table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "tquad/report.hpp"

namespace tq::tquad {

/// Accumulates bandwidth statistics across passes. All passes must profile
/// the same program (kernel ids must line up).
class BandwidthConsensus {
 public:
  /// Cross-pass summary for one kernel and one metric.
  struct Column {
    double mean = 0.0;
    double spread = 0.0;     ///< max-min across passes
    bool inconsistent = false;  ///< spread exceeded the tolerance
  };
  struct Row {
    std::uint32_t kernel = 0;
    std::string name;
    std::uint64_t passes = 0;
    Column avg_read_incl, avg_read_excl, avg_write_incl, avg_write_excl;
    Column max_rw_incl, max_rw_excl;
    /// Activity span from the *finest* pass (most detailed view).
    std::uint64_t activity_span = 0;
  };

  /// `relative_tolerance`: measurements whose (max-min)/mean exceeds this
  /// are flagged inconsistent and should be reported as upper bounds.
  explicit BandwidthConsensus(double relative_tolerance = 0.10)
      : tolerance_(relative_tolerance) {}

  /// Record one completed pass.
  void add_pass(const TQuadTool& tool);

  /// Summaries for every kernel active in at least one pass, ordered by id.
  std::vector<Row> rows() const;

  std::uint64_t passes() const noexcept { return passes_; }

  /// Format a column the way Table IV prints it: "1.2345" or "<1.2345".
  static std::string format_column(const Column& column, int decimals = 4);

 private:
  struct Accum {
    std::string name;
    bool tracked = false;
    RunningStat avg_read_incl, avg_read_excl, avg_write_incl, avg_write_excl;
    RunningStat max_rw_incl, max_rw_excl;
    std::uint64_t finest_interval = ~0ull;
    std::uint64_t finest_span = 0;
  };

  Column summarize(const RunningStat& stat) const;

  double tolerance_;
  std::uint64_t passes_ = 0;
  std::vector<Accum> kernels_;
};

}  // namespace tq::tquad
