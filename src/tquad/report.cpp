#include "tquad/report.hpp"

#include <algorithm>

namespace tq::tquad {

std::vector<FlatRow> flat_profile(const TQuadTool& tool) {
  std::vector<FlatRow> rows;
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    total += tool.activity(k).instructions;
  }
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    const KernelActivity& activity = tool.activity(k);
    if (!tool.reported(k) || activity.calls == 0) continue;
    FlatRow row;
    row.kernel = k;
    row.name = tool.kernel_name(k);
    row.instructions = activity.instructions;
    row.calls = activity.calls;
    row.time_fraction =
        total == 0 ? 0.0
                   : static_cast<double>(activity.instructions) / static_cast<double>(total);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const FlatRow& a, const FlatRow& b) {
    if (a.instructions != b.instructions) return a.instructions > b.instructions;
    return a.name < b.name;
  });
  return rows;
}

BandwidthStats bandwidth_stats(const KernelBandwidth& kernel,
                               std::uint64_t slice_interval,
                               std::uint64_t total_retired) {
  BandwidthStats stats;
  stats.activity_span = kernel.active_slices();
  if (kernel.series.empty()) return stats;
  stats.first_slice = kernel.first_active_slice();
  stats.last_slice = kernel.last_active_slice();
  // A run of `total_retired` instructions ends inside slice
  // (total_retired - 1) / interval; that tail slice covers only
  // `total_retired - slice * interval` instructions. Weight it accordingly
  // instead of pretending it spanned a full interval — otherwise a kernel
  // whose activity ends in a short tail gets its averages (and the tail
  // slice's peak) diluted.
  const std::uint64_t final_slice =
      total_retired > 0 ? (total_retired - 1) / slice_interval : 0;
  const std::uint64_t final_width =
      total_retired > 0 ? total_retired - final_slice * slice_interval
                        : slice_interval;
  const bool ends_in_tail =
      total_retired > 0 && stats.last_slice == final_slice;
  double denom =
      static_cast<double>(stats.activity_span) * static_cast<double>(slice_interval);
  if (ends_in_tail) {
    denom -= static_cast<double>(slice_interval - final_width);
  }
  stats.avg_read_incl = static_cast<double>(kernel.totals.read_incl) / denom;
  stats.avg_read_excl = static_cast<double>(kernel.totals.read_excl) / denom;
  stats.avg_write_incl = static_cast<double>(kernel.totals.write_incl) / denom;
  stats.avg_write_excl = static_cast<double>(kernel.totals.write_excl) / denom;
  for (const SliceSample& sample : kernel.series) {
    const double width =
        ends_in_tail && sample.slice == final_slice
            ? static_cast<double>(final_width)
            : static_cast<double>(slice_interval);
    stats.max_rw_incl =
        std::max(stats.max_rw_incl,
                 static_cast<double>(sample.counters.read_incl +
                                     sample.counters.write_incl) /
                     width);
    stats.max_rw_excl =
        std::max(stats.max_rw_excl,
                 static_cast<double>(sample.counters.read_excl +
                                     sample.counters.write_excl) /
                     width);
  }
  return stats;
}

std::vector<double> dense_series(const TQuadTool& tool, std::uint32_t kernel,
                                 Metric metric) {
  const std::uint64_t slices = tool.bandwidth().max_slice() + 1;
  std::vector<double> out(slices, 0.0);
  for (const SliceSample& sample : tool.bandwidth().kernel(kernel).series) {
    const SliceCounters& c = sample.counters;
    double value = 0.0;
    switch (metric) {
      case Metric::kReadIncl: value = static_cast<double>(c.read_incl); break;
      case Metric::kReadExcl: value = static_cast<double>(c.read_excl); break;
      case Metric::kWriteIncl: value = static_cast<double>(c.write_incl); break;
      case Metric::kWriteExcl: value = static_cast<double>(c.write_excl); break;
      case Metric::kReadWriteIncl:
        value = static_cast<double>(c.read_incl + c.write_incl);
        break;
      case Metric::kReadWriteExcl:
        value = static_cast<double>(c.read_excl + c.write_excl);
        break;
    }
    out[sample.slice] = value;
  }
  return out;
}

TextTable flat_profile_table(const TQuadTool& tool) {
  TextTable table({"kernel", "%time", "instructions", "calls"});
  for (const FlatRow& row : flat_profile(tool)) {
    table.add_row({row.name, format_percent(row.time_fraction),
                   format_count(row.instructions), format_count(row.calls)});
  }
  return table;
}

TextTable bandwidth_table(const TQuadTool& tool, const CpuModel& model) {
  TextTable table({"kernel", "active slices", "avg read MB/s", "avg write MB/s",
                   "peak R+W MB/s", "est. active time (ms)"});
  for (const FlatRow& row : flat_profile(tool)) {
    const BandwidthStats stats = bandwidth_stats(tool.bandwidth().kernel(row.kernel),
                                                 tool.bandwidth().slice_interval(),
                                                 tool.total_retired());
    if (stats.activity_span == 0) continue;
    const double to_mb = 1e-6;
    table.add_row(
        {row.name, format_count(stats.activity_span),
         format_fixed(model.to_bytes_per_second(stats.avg_read_incl) * to_mb, 1),
         format_fixed(model.to_bytes_per_second(stats.avg_write_incl) * to_mb, 1),
         format_fixed(model.to_bytes_per_second(stats.max_rw_incl) * to_mb, 1),
         format_fixed(model.to_seconds(stats.activity_span *
                                       tool.bandwidth().slice_interval()) *
                          1e3,
                      3)});
  }
  return table;
}

}  // namespace tq::tquad
