// The tQUAD profiler as a minipin tool — the paper's primary contribution.
//
// Wiring (mirrors Figures 3-5 of the paper):
//   * an RTN instrumentation callback registers EnterFC on every routine
//     entry to maintain the internal call stack;
//   * an INS instrumentation callback attaches
//       - IncreaseRead / IncreaseWrite predicated analysis calls to every
//         memory-referencing instruction (they return immediately on
//         prefetches),
//       - a return handler to every ret (call-stack integrity),
//       - a per-instruction tick that attributes retired instructions to the
//         kernel on top of the stack and drives slice rollover.
//
// The tool runs in either of two modes:
//   * standalone — construct with an Engine; the tool registers its own
//     analysis calls and maintains its own call stack (the paper's shape);
//   * session    — construct with a Program and register on a
//     session::ProfileSession; attribution arrives pre-computed from the
//     shared KernelAttribution pass (live or trace replay), and the tool is
//     pure accounting. Use the same library policy as the session.
//
// Unlike the original tool, stack-area inclusion/exclusion is not a run-time
// either/or: both classifications are recorded simultaneously (see
// BandwidthRecorder), so one run yields the paper's two runs' worth of data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minipin/minipin.hpp"
#include "session/events.hpp"
#include "tquad/bandwidth.hpp"
#include "tquad/callstack.hpp"

namespace tq::tquad {

/// Command-line-equivalent options (Section IV-C lists the original three:
/// stack inclusion, slice interval, library exclusion).
struct Options {
  std::uint64_t slice_interval = 100'000;  ///< instructions per time slice
  LibraryPolicy library_policy = LibraryPolicy::kExclude;
  bool count_prefetch = false;  ///< paper: analysis routines skip prefetches
};

/// Lifetime per-kernel tallies beyond bandwidth.
struct KernelActivity {
  std::uint64_t calls = 0;         ///< dynamic routine entries
  std::uint64_t instructions = 0;  ///< retired while this kernel was on top
};

/// The tool. Construct before the run (Engine::run() or
/// ProfileSession::run()); results are valid after it returns.
class TQuadTool : public session::AnalysisConsumer {
 public:
  /// Standalone mode: registers analysis calls on `engine`.
  TQuadTool(pin::Engine& engine, Options options);

  /// Session mode: accounting only; feed via ProfileSession::add_consumer.
  TQuadTool(const vm::Program& program, Options options);

  TQuadTool(const TQuadTool&) = delete;
  TQuadTool& operator=(const TQuadTool&) = delete;

  const Options& options() const noexcept { return options_; }
  const BandwidthRecorder& bandwidth() const noexcept { return recorder_; }
  const CallStack& callstack() const noexcept { return stack_; }
  const KernelActivity& activity(std::uint32_t kernel) const {
    TQUAD_CHECK(kernel < activity_.size(), "kernel id out of range");
    return activity_[kernel];
  }
  std::size_t kernel_count() const noexcept { return activity_.size(); }
  const std::string& kernel_name(std::uint32_t kernel) const {
    return program_.functions()[kernel].name;
  }
  /// Whether the kernel is reported under the library policy.
  bool reported(std::uint32_t kernel) const noexcept { return stack_.tracked(kernel); }

  std::uint64_t total_retired() const noexcept { return total_retired_; }
  /// Instructions retired with no attributable kernel (excluded libraries).
  std::uint64_t unattributed_instructions() const noexcept { return unattributed_; }

  // session::AnalysisConsumer (session mode). No return accounting.
  unsigned event_interests() const override {
    return kEnterInterest | kTickInterest | kAccessInterest;
  }
  void on_kernel_enter(const session::EnterEvent& event) override;
  void on_tick(const session::TickEvent& event) override;
  void on_tick_run(const session::TickRunEvent& run) override;
  void on_access(const session::AccessEvent& event) override;
  void on_session_end(std::uint64_t total_retired) override;
  void on_finish(const vm::RunOutcome& outcome) override { outcome_ = outcome; }

  /// How the observed run ended (session mode; kHalted for a clean run).
  /// A trapped/truncated outcome means the profile is a valid prefix.
  const vm::RunOutcome& outcome() const noexcept { return outcome_; }

 private:
  // Analysis routines (static trampolines, pintool style; standalone mode).
  static void enter_fc(void* tool, const pin::RtnArgs& args);
  static void increase_read(void* tool, const pin::InsArgs& args);
  static void increase_write(void* tool, const pin::InsArgs& args);
  static void prefetch_read(void* tool, const pin::InsArgs& args);
  static void on_ret(void* tool, const pin::InsArgs& args);
  static void on_instr_tick(void* tool, const pin::InsArgs& args);

  void instrument_rtn(pin::Rtn& rtn);
  void instrument_ins(pin::Ins& ins);

  // Mode-independent accounting.
  void account_enter(std::uint32_t func, bool tracked);
  void account_tick(std::uint32_t kernel);
  void account_access(std::uint32_t kernel, std::uint64_t retired,
                      std::uint32_t size, bool is_read, bool is_stack);
  void account_fini(std::uint64_t retired);

  const vm::Program& program_;
  Options options_;
  CallStack stack_;  ///< standalone attribution; static tables in session mode
  BandwidthRecorder recorder_;
  std::vector<KernelActivity> activity_;
  vm::RunOutcome outcome_;
  std::uint64_t total_retired_ = 0;
  std::uint64_t unattributed_ = 0;
};

}  // namespace tq::tquad
