// The tQUAD profiler as a minipin tool — the paper's primary contribution.
//
// Wiring (mirrors Figures 3-5 of the paper):
//   * an RTN instrumentation callback registers EnterFC on every routine
//     entry to maintain the internal call stack;
//   * an INS instrumentation callback attaches
//       - IncreaseRead / IncreaseWrite predicated analysis calls to every
//         memory-referencing instruction (they return immediately on
//         prefetches),
//       - a return handler to every ret (call-stack integrity),
//       - a per-instruction tick that attributes retired instructions to the
//         kernel on top of the stack and drives slice rollover.
//
// Unlike the original tool, stack-area inclusion/exclusion is not a run-time
// either/or: both classifications are recorded simultaneously (see
// BandwidthRecorder), so one run yields the paper's two runs' worth of data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minipin/minipin.hpp"
#include "tquad/bandwidth.hpp"
#include "tquad/callstack.hpp"

namespace tq::tquad {

/// Command-line-equivalent options (Section IV-C lists the original three:
/// stack inclusion, slice interval, library exclusion).
struct Options {
  std::uint64_t slice_interval = 100'000;  ///< instructions per time slice
  LibraryPolicy library_policy = LibraryPolicy::kExclude;
  bool count_prefetch = false;  ///< paper: analysis routines skip prefetches
};

/// Lifetime per-kernel tallies beyond bandwidth.
struct KernelActivity {
  std::uint64_t calls = 0;         ///< dynamic routine entries
  std::uint64_t instructions = 0;  ///< retired while this kernel was on top
};

/// The tool. Construct with an Engine *before* running it; results are valid
/// after Engine::run() returns.
class TQuadTool {
 public:
  TQuadTool(pin::Engine& engine, Options options);

  TQuadTool(const TQuadTool&) = delete;
  TQuadTool& operator=(const TQuadTool&) = delete;

  const Options& options() const noexcept { return options_; }
  const BandwidthRecorder& bandwidth() const noexcept { return recorder_; }
  const CallStack& callstack() const noexcept { return stack_; }
  const KernelActivity& activity(std::uint32_t kernel) const {
    TQUAD_CHECK(kernel < activity_.size(), "kernel id out of range");
    return activity_[kernel];
  }
  std::size_t kernel_count() const noexcept { return activity_.size(); }
  const std::string& kernel_name(std::uint32_t kernel) const {
    return engine_.program().functions()[kernel].name;
  }
  /// Whether the kernel is reported under the library policy.
  bool reported(std::uint32_t kernel) const noexcept { return stack_.tracked(kernel); }

  std::uint64_t total_retired() const noexcept { return total_retired_; }
  /// Instructions retired with no attributable kernel (excluded libraries).
  std::uint64_t unattributed_instructions() const noexcept { return unattributed_; }

 private:
  // Stack classification: an address at or above SP (minus a small red zone
  // covering the return-address push) and below the stack base is "local
  // stack area". Same SP-relative heuristic as the pintool.
  static constexpr std::uint64_t kRedZone = 64;

  static bool is_stack_addr(std::uint64_t ea, std::uint64_t sp) noexcept {
    return ea + kRedZone >= sp && ea < vm::kStackBase;
  }

  // Analysis routines (static trampolines, pintool style).
  static void enter_fc(void* tool, const pin::RtnArgs& args);
  static void increase_read(void* tool, const pin::InsArgs& args);
  static void increase_write(void* tool, const pin::InsArgs& args);
  static void prefetch_read(void* tool, const pin::InsArgs& args);
  static void on_ret(void* tool, const pin::InsArgs& args);
  static void on_tick(void* tool, const pin::InsArgs& args);

  void instrument_rtn(pin::Rtn& rtn);
  void instrument_ins(pin::Ins& ins);
  void fini(std::uint64_t retired);

  pin::Engine& engine_;
  Options options_;
  CallStack stack_;
  BandwidthRecorder recorder_;
  std::vector<KernelActivity> activity_;
  std::uint64_t total_retired_ = 0;
  std::uint64_t unattributed_ = 0;
};

}  // namespace tq::tquad
