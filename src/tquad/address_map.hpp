// Per-kernel address-map heatmap: access counts bucketed by (time slice,
// address bucket), in the spirit of MapVisual's memory-access maps.
//
// The map makes a workload's memory *shape* visible and diffable: a
// streaming kernel paints a diagonal band, a pointer chase speckles the
// whole allocation, and a phase-sharp pipeline shows one hot band per
// phase. `tquad_cli -viz json[:path]` exports the JSON rendering; the zoo
// benches and smoke tests consume it to assert declared shapes.
//
// Accounting contract: every delivered AccessEvent is counted exactly once —
// stack accesses per kernel in `stack_accesses` (a heatmap of stack frames
// would swamp the data-structure signal), all others in a sparse
// (slice, bucket) cell split into reads (prefetch touches included) and
// writes. So for every kernel: accesses == stack_accesses + sum(cell reads
// + cell writes), and the sum over kernels equals the session's delivered
// access-event count.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "session/events.hpp"
#include "vm/program.hpp"

namespace tq::tquad {

struct AddressMapOptions {
  std::uint64_t slice_interval = 50'000;  ///< retired instructions per slice
  std::uint64_t bucket_bytes = 256;       ///< address granularity
};

class AddressMapTool final : public session::AnalysisConsumer {
 public:
  /// Read/write counts of one (slice, bucket) cell.
  struct CellCounts {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };
  /// (time slice, address bucket); std::map keeps cells render-sorted.
  using CellKey = std::pair<std::uint64_t, std::uint64_t>;

  struct KernelMap {
    std::map<CellKey, CellCounts> cells;  ///< non-stack accesses only
    std::uint64_t stack_accesses = 0;
    std::uint64_t accesses = 0;  ///< every access attributed to this kernel
  };

  explicit AddressMapTool(const vm::Program& program,
                          AddressMapOptions options = {});

  unsigned event_interests() const override { return kAccessInterest; }
  void on_access(const session::AccessEvent& event) override;

  const AddressMapOptions& options() const noexcept { return options_; }
  /// Per-kernel maps keyed by kernel id (kNoKernel for unattributed
  /// accesses), in id order.
  const std::map<std::uint32_t, KernelMap>& kernels() const noexcept {
    return kernels_;
  }
  std::uint64_t total_accesses() const noexcept { return total_accesses_; }

  /// Kernel display name ("(unattributed)" for kNoKernel).
  std::string kernel_label(std::uint32_t kernel) const;

  /// The full map as JSON: keys sorted at every level, kernels sorted by
  /// label, cells sorted by (slice, bucket). Cell rows are
  /// [slice, bucket, reads, writes].
  std::string render_json() const;

 private:
  const vm::Program& program_;
  AddressMapOptions options_;
  std::map<std::uint32_t, KernelMap> kernels_;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace tq::tquad
