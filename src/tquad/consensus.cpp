#include "tquad/consensus.hpp"

#include "support/check.hpp"
#include "support/table.hpp"

namespace tq::tquad {

void BandwidthConsensus::add_pass(const TQuadTool& tool) {
  if (kernels_.empty()) {
    kernels_.resize(tool.kernel_count());
    for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
      kernels_[k].name = tool.kernel_name(k);
      kernels_[k].tracked = tool.reported(k);
    }
  }
  TQUAD_CHECK(kernels_.size() == tool.kernel_count(),
              "consensus passes must profile the same program");
  ++passes_;
  const std::uint64_t interval = tool.bandwidth().slice_interval();
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    const BandwidthStats stats =
        bandwidth_stats(tool.bandwidth().kernel(k), interval);
    Accum& accum = kernels_[k];
    accum.avg_read_incl.add(stats.avg_read_incl);
    accum.avg_read_excl.add(stats.avg_read_excl);
    accum.avg_write_incl.add(stats.avg_write_incl);
    accum.avg_write_excl.add(stats.avg_write_excl);
    accum.max_rw_incl.add(stats.max_rw_incl);
    accum.max_rw_excl.add(stats.max_rw_excl);
    if (interval < accum.finest_interval) {
      accum.finest_interval = interval;
      accum.finest_span = stats.activity_span;
    }
  }
}

BandwidthConsensus::Column BandwidthConsensus::summarize(
    const RunningStat& stat) const {
  Column column;
  column.mean = stat.mean();
  column.spread = stat.count() == 0 ? 0.0 : stat.max() - stat.min();
  column.inconsistent =
      column.mean > 0.0 && column.spread / column.mean > tolerance_;
  return column;
}

std::vector<BandwidthConsensus::Row> BandwidthConsensus::rows() const {
  std::vector<Row> out;
  for (std::uint32_t k = 0; k < kernels_.size(); ++k) {
    const Accum& accum = kernels_[k];
    if (!accum.tracked || accum.finest_span == 0) continue;
    Row row;
    row.kernel = k;
    row.name = accum.name;
    row.passes = passes_;
    row.avg_read_incl = summarize(accum.avg_read_incl);
    row.avg_read_excl = summarize(accum.avg_read_excl);
    row.avg_write_incl = summarize(accum.avg_write_incl);
    row.avg_write_excl = summarize(accum.avg_write_excl);
    row.max_rw_incl = summarize(accum.max_rw_incl);
    row.max_rw_excl = summarize(accum.max_rw_excl);
    row.activity_span = accum.finest_span;
    out.push_back(std::move(row));
  }
  return out;
}

std::string BandwidthConsensus::format_column(const Column& column, int decimals) {
  // The paper prints inconsistent measurements as upper bounds ("<53.2686"):
  // report mean + spread as the bound.
  if (column.inconsistent) {
    return "<" + format_fixed(column.mean + column.spread / 2.0, decimals);
  }
  return format_fixed(column.mean, decimals);
}

}  // namespace tq::tquad
