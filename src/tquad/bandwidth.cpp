#include "tquad/bandwidth.hpp"

#include <utility>

namespace tq::tquad {

void KernelBandwidth::merge(const KernelBandwidth& other) {
  if (other.series.empty() && other.totals.empty()) return;
  // Two-pointer merge of the ascending sparse series; equal slice indices
  // (a slice cut by a shard boundary) fold by addition.
  std::vector<SliceSample> merged;
  merged.reserve(series.size() + other.series.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < series.size() || b < other.series.size()) {
    if (b == other.series.size() ||
        (a < series.size() && series[a].slice < other.series[b].slice)) {
      merged.push_back(series[a++]);
    } else if (a == series.size() || other.series[b].slice < series[a].slice) {
      merged.push_back(other.series[b++]);
    } else {
      SliceSample sample = series[a++];
      sample.counters.merge(other.series[b++].counters);
      merged.push_back(sample);
    }
  }
  series = std::move(merged);
  totals.merge(other.totals);
}

BandwidthRecorder::BandwidthRecorder(std::size_t kernel_count,
                                     std::uint64_t slice_interval)
    : kernels_(kernel_count), open_(kernel_count), slice_interval_(slice_interval) {
  TQUAD_CHECK(slice_interval_ > 0, "slice interval must be positive");
}

void BandwidthRecorder::on_access(std::uint32_t kernel, std::uint64_t retired,
                                  std::uint32_t bytes, bool is_read, bool is_stack) {
  TQUAD_DCHECK(kernel < kernels_.size(), "kernel id out of range");
  TQUAD_DCHECK(!finished_, "access after finish()");
  const std::uint64_t slice = retired / slice_interval_;
  max_slice_ = std::max(max_slice_, slice);
  Open& open = open_[kernel];
  if (open.slice != slice) {
    if (open.slice != Open::kNone && !open.counters.empty()) {
      kernels_[kernel].series.push_back(SliceSample{open.slice, open.counters});
    }
    open.slice = slice;
    open.counters.clear();
  }
  if (is_read) {
    open.counters.read_incl += bytes;
    if (!is_stack) open.counters.read_excl += bytes;
  } else {
    open.counters.write_incl += bytes;
    if (!is_stack) open.counters.write_excl += bytes;
  }
  auto& totals = kernels_[kernel].totals;
  if (is_read) {
    totals.read_incl += bytes;
    if (!is_stack) totals.read_excl += bytes;
  } else {
    totals.write_incl += bytes;
    if (!is_stack) totals.write_excl += bytes;
  }
}

void BandwidthRecorder::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::size_t k = 0; k < kernels_.size(); ++k) {
    Open& open = open_[k];
    if (open.slice != Open::kNone && !open.counters.empty()) {
      kernels_[k].series.push_back(SliceSample{open.slice, open.counters});
    }
    open.slice = Open::kNone;
    open.counters.clear();
  }
}

}  // namespace tq::tquad
