#include "tquad/bandwidth.hpp"

namespace tq::tquad {

BandwidthRecorder::BandwidthRecorder(std::size_t kernel_count,
                                     std::uint64_t slice_interval)
    : kernels_(kernel_count), open_(kernel_count), slice_interval_(slice_interval) {
  TQUAD_CHECK(slice_interval_ > 0, "slice interval must be positive");
}

void BandwidthRecorder::on_access(std::uint32_t kernel, std::uint64_t retired,
                                  std::uint32_t bytes, bool is_read, bool is_stack) {
  TQUAD_DCHECK(kernel < kernels_.size(), "kernel id out of range");
  TQUAD_DCHECK(!finished_, "access after finish()");
  const std::uint64_t slice = retired / slice_interval_;
  max_slice_ = std::max(max_slice_, slice);
  Open& open = open_[kernel];
  if (open.slice != slice) {
    if (open.slice != Open::kNone && !open.counters.empty()) {
      kernels_[kernel].series.push_back(SliceSample{open.slice, open.counters});
    }
    open.slice = slice;
    open.counters.clear();
  }
  if (is_read) {
    open.counters.read_incl += bytes;
    if (!is_stack) open.counters.read_excl += bytes;
  } else {
    open.counters.write_incl += bytes;
    if (!is_stack) open.counters.write_excl += bytes;
  }
  auto& totals = kernels_[kernel].totals;
  if (is_read) {
    totals.read_incl += bytes;
    if (!is_stack) totals.read_excl += bytes;
  } else {
    totals.write_incl += bytes;
    if (!is_stack) totals.write_excl += bytes;
  }
}

void BandwidthRecorder::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::size_t k = 0; k < kernels_.size(); ++k) {
    Open& open = open_[k];
    if (open.slice != Open::kNone && !open.counters.empty()) {
      kernels_[k].series.push_back(SliceSample{open.slice, open.counters});
    }
    open.slice = Open::kNone;
    open.counters.clear();
  }
}

}  // namespace tq::tquad
