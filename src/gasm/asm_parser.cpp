#include "gasm/asm_parser.hpp"

#include <bit>
#include <charconv>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "gasm/builder.hpp"
#include "support/check.hpp"

namespace tq::gasm {

namespace {

using isa::Op;

[[noreturn]] void fail(int line, const std::string& why) {
  TQUAD_THROW("asm line " + std::to_string(line) + ": " + why);
}

/// Operand shapes an instruction family expects.
enum class Pattern {
  kNone,     // ret, halt, nop
  kRRR,      // add r1, r2, r3
  kRRI,      // addi r1, r2, imm
  kRI,       // movi r1, imm
  kRR,       // mov r1, r2
  kFFF,      // fadd f1, f2, f3
  kFF,       // fmov f1, f2
  kFI,       // fmovi f1, 3.5
  kRFF,      // fcmplt r1, f2, f3
  kFR,       // i2f f1, r2
  kRF,       // f2i r1, f2
  kLoad,     // load8 r1, [r2+4]      (size from suffix)
  kLoadF,    // fload f1, [r2+4]      (fixed size)
  kStore,    // store8 [r1+4], r2
  kStoreF,   // fstore [r1+4], f2
  kPrefetch, // prefetch8 [r1+0]
  kMovs,     // movs64 [r1], [r2]
  kJmp,      // jmp label
  kBr,       // brz r1, label
  kCall,     // call name
  kSys,      // sys read | sys 2
};

struct Mnemonic {
  Op op;
  Pattern pattern;
  std::uint8_t fixed_size;  // 0 = size comes from the suffix
};

/// Base mnemonic table (suffix-less forms).
const std::map<std::string, Mnemonic>& mnemonics() {
  static const std::map<std::string, Mnemonic> table{
      {"nop", {Op::kNop, Pattern::kNone, 0}},
      {"halt", {Op::kHalt, Pattern::kNone, 0}},
      {"ret", {Op::kRet, Pattern::kNone, 0}},
      {"add", {Op::kAdd, Pattern::kRRR, 0}},
      {"sub", {Op::kSub, Pattern::kRRR, 0}},
      {"mul", {Op::kMul, Pattern::kRRR, 0}},
      {"divs", {Op::kDivS, Pattern::kRRR, 0}},
      {"rems", {Op::kRemS, Pattern::kRRR, 0}},
      {"and", {Op::kAnd, Pattern::kRRR, 0}},
      {"or", {Op::kOr, Pattern::kRRR, 0}},
      {"xor", {Op::kXor, Pattern::kRRR, 0}},
      {"shl", {Op::kShl, Pattern::kRRR, 0}},
      {"shrl", {Op::kShrL, Pattern::kRRR, 0}},
      {"shra", {Op::kShrA, Pattern::kRRR, 0}},
      {"slts", {Op::kSltS, Pattern::kRRR, 0}},
      {"sltu", {Op::kSltU, Pattern::kRRR, 0}},
      {"seq", {Op::kSeq, Pattern::kRRR, 0}},
      {"addi", {Op::kAddI, Pattern::kRRI, 0}},
      {"muli", {Op::kMulI, Pattern::kRRI, 0}},
      {"andi", {Op::kAndI, Pattern::kRRI, 0}},
      {"ori", {Op::kOrI, Pattern::kRRI, 0}},
      {"xori", {Op::kXorI, Pattern::kRRI, 0}},
      {"shli", {Op::kShlI, Pattern::kRRI, 0}},
      {"shrli", {Op::kShrLI, Pattern::kRRI, 0}},
      {"shrai", {Op::kShrAI, Pattern::kRRI, 0}},
      {"sltsi", {Op::kSltSI, Pattern::kRRI, 0}},
      {"movi", {Op::kMovI, Pattern::kRI, 0}},
      {"mov", {Op::kMov, Pattern::kRR, 0}},
      {"fadd", {Op::kFAdd, Pattern::kFFF, 0}},
      {"fsub", {Op::kFSub, Pattern::kFFF, 0}},
      {"fmul", {Op::kFMul, Pattern::kFFF, 0}},
      {"fdiv", {Op::kFDiv, Pattern::kFFF, 0}},
      {"fmin", {Op::kFMin, Pattern::kFFF, 0}},
      {"fmax", {Op::kFMax, Pattern::kFFF, 0}},
      {"fneg", {Op::kFNeg, Pattern::kFF, 0}},
      {"fabs", {Op::kFAbs, Pattern::kFF, 0}},
      {"fsqrt", {Op::kFSqrt, Pattern::kFF, 0}},
      {"fsin", {Op::kFSin, Pattern::kFF, 0}},
      {"fcos", {Op::kFCos, Pattern::kFF, 0}},
      {"fmov", {Op::kFMov, Pattern::kFF, 0}},
      {"fmovi", {Op::kFMovI, Pattern::kFI, 0}},
      {"fcmplt", {Op::kFCmpLt, Pattern::kRFF, 0}},
      {"fcmple", {Op::kFCmpLe, Pattern::kRFF, 0}},
      {"fcmpeq", {Op::kFCmpEq, Pattern::kRFF, 0}},
      {"i2f", {Op::kI2F, Pattern::kFR, 0}},
      {"f2i", {Op::kF2I, Pattern::kRF, 0}},
      {"load", {Op::kLoad, Pattern::kLoad, 0}},
      {"loads", {Op::kLoadS, Pattern::kLoad, 0}},
      {"store", {Op::kStore, Pattern::kStore, 0}},
      {"fload", {Op::kFLoad, Pattern::kLoadF, 8}},
      {"fstore", {Op::kFStore, Pattern::kStoreF, 8}},
      {"fload4", {Op::kFLoad4, Pattern::kLoadF, 4}},
      {"fstore4", {Op::kFStore4, Pattern::kStoreF, 4}},
      {"prefetch", {Op::kPrefetch, Pattern::kPrefetch, 0}},
      {"movs", {Op::kMovs, Pattern::kMovs, 0}},
      {"jmp", {Op::kJmp, Pattern::kJmp, 0}},
      {"brz", {Op::kBrZ, Pattern::kBr, 0}},
      {"brnz", {Op::kBrNZ, Pattern::kBr, 0}},
      {"call", {Op::kCall, Pattern::kCall, 0}},
      {"sys", {Op::kSys, Pattern::kSys, 0}},
  };
  return table;
}

const std::map<std::string, isa::Sys>& sys_names() {
  static const std::map<std::string, isa::Sys> table{
      {"alloc", isa::Sys::kAlloc},   {"read", isa::Sys::kRead},
      {"write", isa::Sys::kWrite},   {"seek", isa::Sys::kSeek},
      {"filesize", isa::Sys::kFileSize}, {"printi", isa::Sys::kPrintI64},
      {"printf", isa::Sys::kPrintF64},
  };
  return table;
}

/// Split a mnemonic token into (base, size-suffix): "load8" -> ("load", 8).
std::pair<std::string, unsigned> split_suffix(const std::string& token) {
  std::size_t digits = 0;
  while (digits < token.size() && std::isdigit(static_cast<unsigned char>(
                                      token[token.size() - 1 - digits]))) {
    ++digits;
  }
  if (digits == 0) return {token, 0};
  const std::string base = token.substr(0, token.size() - digits);
  // Known numeric-suffixed mnemonics that are full names themselves.
  if (mnemonics().contains(token)) return {token, 0};  // fload4, fstore4
  const unsigned size =
      static_cast<unsigned>(std::strtoul(token.c_str() + base.size(), nullptr, 10));
  return {base, size};
}

struct ParsedLine {
  std::string head;                 // mnemonic / directive / label
  std::vector<std::string> operands;
  std::optional<std::string> predicate;  // "rN" from "?rN"
};

/// Tokenise a source line: strip comments, pull a trailing "?rN" predicate,
/// split the rest into head + comma-separated operands.
std::optional<ParsedLine> tokenize(std::string line, int lineno) {
  if (auto cut = line.find_first_of(";#"); cut != std::string::npos) {
    line.resize(cut);
  }
  // Predicate suffix.
  ParsedLine parsed;
  if (auto qmark = line.find('?'); qmark != std::string::npos) {
    std::string pred = line.substr(qmark + 1);
    line.resize(qmark);
    while (!pred.empty() && std::isspace(static_cast<unsigned char>(pred.back()))) {
      pred.pop_back();
    }
    while (!pred.empty() && std::isspace(static_cast<unsigned char>(pred.front()))) {
      pred.erase(pred.begin());
    }
    if (pred.empty()) fail(lineno, "dangling '?' (expected ?rN)");
    parsed.predicate = pred;
  }
  // Head token.
  std::istringstream in(line);
  if (!(in >> parsed.head)) return std::nullopt;  // blank line
  // Rest: comma-separated operands (brackets may contain '+'/'-' but no commas).
  std::string rest;
  std::getline(in, rest);
  std::string current;
  for (char ch : rest) {
    if (ch == ',') {
      parsed.operands.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) parsed.operands.push_back(current);
  for (auto& operand : parsed.operands) {
    while (!operand.empty() &&
           std::isspace(static_cast<unsigned char>(operand.front()))) {
      operand.erase(operand.begin());
    }
    while (!operand.empty() &&
           std::isspace(static_cast<unsigned char>(operand.back()))) {
      operand.pop_back();
    }
    if (operand.empty()) fail(lineno, "empty operand");
  }
  return parsed;
}

class Assembler {
 public:
  vm::Program run(const std::string& source) {
    std::istringstream in(source);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      auto parsed = tokenize(line, lineno);
      if (!parsed) continue;
      handle(*parsed, lineno);
    }
    if (entry_.empty()) fail(lineno, "no .func defined");
    return prog_.build(entry_);
  }

 private:
  void handle(const ParsedLine& parsed, int lineno) {
    const std::string& head = parsed.head;
    if (head[0] == '.') {
      directive(parsed, lineno);
      return;
    }
    if (head.back() == ':') {
      if (fb_ == nullptr) fail(lineno, "label outside a function");
      const std::string name = head.substr(0, head.size() - 1);
      fb_->bind(label(name));
      return;
    }
    instruction(parsed, lineno);
  }

  void directive(const ParsedLine& parsed, int lineno) {
    if (parsed.head == ".func") {
      if (parsed.operands.empty()) fail(lineno, ".func needs a name");
      std::istringstream in(parsed.operands[0]);
      std::string name, image;
      in >> name >> image;
      vm::ImageKind kind = vm::ImageKind::kMain;
      if (image == "@library") {
        kind = vm::ImageKind::kLibrary;
      } else if (image == "@os") {
        kind = vm::ImageKind::kOs;
      } else if (!image.empty()) {
        fail(lineno, "unknown image annotation '" + image + "'");
      }
      fb_ = &prog_.begin_function(name, kind);
      labels_.clear();
      if (entry_.empty()) entry_ = name;
      return;
    }
    if (parsed.head == ".entry") {
      if (parsed.operands.size() != 1) fail(lineno, ".entry needs a name");
      std::istringstream in(parsed.operands[0]);
      in >> entry_;
      return;
    }
    if (parsed.head == ".global") {
      if (parsed.operands.empty()) fail(lineno, ".global needs 'name size [align]'");
      std::istringstream in(parsed.operands[0]);
      std::string name;
      std::uint64_t size = 0, align = 8;
      if (!(in >> name >> size)) fail(lineno, ".global needs 'name size [align]'");
      in >> align;
      globals_[name] = prog_.alloc_global(name, size, align);
      return;
    }
    fail(lineno, "unknown directive '" + parsed.head + "'");
  }

  // ---- operand parsing ------------------------------------------------------

  R int_reg(const std::string& token, int lineno) const {
    if (token == "sp") return SP;
    if (token.size() >= 2 && token[0] == 'r') {
      const int index = std::atoi(token.c_str() + 1);
      if (index >= 0 && index < static_cast<int>(isa::kNumIntRegs)) {
        return R{static_cast<std::uint8_t>(index)};
      }
    }
    fail(lineno, "expected integer register, got '" + token + "'");
  }

  F fp_reg(const std::string& token, int lineno) const {
    if (token.size() >= 2 && token[0] == 'f' &&
        std::isdigit(static_cast<unsigned char>(token[1]))) {
      const int index = std::atoi(token.c_str() + 1);
      if (index >= 0 && index < static_cast<int>(isa::kNumFpRegs)) {
        return F{static_cast<std::uint8_t>(index)};
      }
    }
    fail(lineno, "expected fp register, got '" + token + "'");
  }

  std::int64_t immediate(const std::string& token, int lineno) const {
    if (auto it = globals_.find(token); it != globals_.end()) {
      return static_cast<std::int64_t>(it->second);
    }
    std::int64_t value = 0;
    const char* begin = token.c_str();
    const char* end = begin + token.size();
    int base = 10;
    if (token.starts_with("0x") || token.starts_with("-0x")) {
      base = 16;
      // std::from_chars with base 16 does not accept the 0x prefix.
      const bool negative = token[0] == '-';
      auto [ptr, ec] =
          std::from_chars(begin + (negative ? 3 : 2), end, value, base);
      if (ec != std::errc() || ptr != end) {
        fail(lineno, "bad immediate '" + token + "'");
      }
      return negative ? -value : value;
    }
    auto [ptr, ec] = std::from_chars(begin, end, value, base);
    if (ec != std::errc() || ptr != end) {
      fail(lineno, "bad immediate '" + token + "'");
    }
    return value;
  }

  /// "[reg+disp]" / "[reg-disp]" / "[reg]" -> (reg, disp).
  std::pair<R, std::int64_t> mem_operand(const std::string& token, int lineno) const {
    if (token.size() < 3 || token.front() != '[' || token.back() != ']') {
      fail(lineno, "expected memory operand [reg+disp], got '" + token + "'");
    }
    const std::string inner = token.substr(1, token.size() - 2);
    const std::size_t sep = inner.find_first_of("+-", 1);
    if (sep == std::string::npos) {
      return {int_reg(inner, lineno), 0};
    }
    const R base = int_reg(inner.substr(0, sep), lineno);
    std::int64_t disp = immediate(inner.substr(sep + 1), lineno);
    if (inner[sep] == '-') disp = -disp;
    return {base, disp};
  }

  FunctionBuilder::Label label(const std::string& name) {
    auto it = labels_.find(name);
    if (it != labels_.end()) return it->second;
    const auto created = fb_->new_label();
    labels_.emplace(name, created);
    return created;
  }

  // ---- instruction emission ----------------------------------------------------

  void instruction(const ParsedLine& parsed, int lineno) {
    if (fb_ == nullptr) fail(lineno, "instruction outside a function");
    auto [base, size] = split_suffix(parsed.head);
    auto it = mnemonics().find(base);
    if (it == mnemonics().end()) fail(lineno, "unknown mnemonic '" + parsed.head + "'");
    const Mnemonic& mn = it->second;
    const auto& ops = parsed.operands;
    auto want = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(lineno, parsed.head + " expects " + std::to_string(n) + " operand(s)");
      }
    };
    if (mn.fixed_size != 0) size = mn.fixed_size;
    auto check_size = [&] {
      const bool movs = mn.op == Op::kMovs;
      const bool ok = movs ? (size == 8 || size == 16 || size == 32 || size == 64)
                           : (size == 1 || size == 2 || size == 4 || size == 8);
      if (!ok) fail(lineno, "bad size suffix on '" + parsed.head + "'");
    };

    switch (mn.pattern) {
      case Pattern::kNone:
        want(0);
        fb_->emit_raw(isa::Instr{.op = mn.op});
        break;
      case Pattern::kRRR: {
        want(3);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = int_reg(ops[0], lineno).idx,
                             .ra = int_reg(ops[1], lineno).idx,
                             .rb = int_reg(ops[2], lineno).idx});
        break;
      }
      case Pattern::kRRI: {
        want(3);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = int_reg(ops[0], lineno).idx,
                             .ra = int_reg(ops[1], lineno).idx,
                             .imm = immediate(ops[2], lineno)});
        break;
      }
      case Pattern::kRI:
        want(2);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = int_reg(ops[0], lineno).idx,
                             .imm = immediate(ops[1], lineno)});
        break;
      case Pattern::kRR:
        want(2);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = int_reg(ops[0], lineno).idx,
                             .ra = int_reg(ops[1], lineno).idx});
        break;
      case Pattern::kFFF:
        want(3);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = fp_reg(ops[0], lineno).idx,
                             .ra = fp_reg(ops[1], lineno).idx,
                             .rb = fp_reg(ops[2], lineno).idx});
        break;
      case Pattern::kFF:
        want(2);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = fp_reg(ops[0], lineno).idx,
                             .ra = fp_reg(ops[1], lineno).idx});
        break;
      case Pattern::kFI: {
        want(2);
        const double value = std::strtod(ops[1].c_str(), nullptr);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = fp_reg(ops[0], lineno).idx,
                             .imm = std::bit_cast<std::int64_t>(value)});
        break;
      }
      case Pattern::kRFF:
        want(3);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = int_reg(ops[0], lineno).idx,
                             .ra = fp_reg(ops[1], lineno).idx,
                             .rb = fp_reg(ops[2], lineno).idx});
        break;
      case Pattern::kFR:
        want(2);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = fp_reg(ops[0], lineno).idx,
                             .ra = int_reg(ops[1], lineno).idx});
        break;
      case Pattern::kRF:
        want(2);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = int_reg(ops[0], lineno).idx,
                             .ra = fp_reg(ops[1], lineno).idx});
        break;
      case Pattern::kLoad: {
        want(2);
        check_size();
        const auto [mem_base, disp] = mem_operand(ops[1], lineno);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = int_reg(ops[0], lineno).idx,
                             .ra = mem_base.idx,
                             .size = static_cast<std::uint8_t>(size),
                             .imm = disp});
        break;
      }
      case Pattern::kLoadF: {
        want(2);
        const auto [mem_base, disp] = mem_operand(ops[1], lineno);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .rd = fp_reg(ops[0], lineno).idx,
                             .ra = mem_base.idx,
                             .size = static_cast<std::uint8_t>(size),
                             .imm = disp});
        break;
      }
      case Pattern::kStore: {
        want(2);
        check_size();
        const auto [mem_base, disp] = mem_operand(ops[0], lineno);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .ra = mem_base.idx,
                             .rb = int_reg(ops[1], lineno).idx,
                             .size = static_cast<std::uint8_t>(size),
                             .imm = disp});
        break;
      }
      case Pattern::kStoreF: {
        want(2);
        const auto [mem_base, disp] = mem_operand(ops[0], lineno);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .ra = mem_base.idx,
                             .rb = fp_reg(ops[1], lineno).idx,
                             .size = static_cast<std::uint8_t>(size),
                             .imm = disp});
        break;
      }
      case Pattern::kPrefetch: {
        want(1);
        check_size();
        const auto [mem_base, disp] = mem_operand(ops[0], lineno);
        fb_->emit_raw(isa::Instr{.op = mn.op,
                             .ra = mem_base.idx,
                             .size = static_cast<std::uint8_t>(size),
                             .imm = disp});
        break;
      }
      case Pattern::kMovs: {
        want(2);
        check_size();
        const auto [dst, dst_disp] = mem_operand(ops[0], lineno);
        const auto [src, src_disp] = mem_operand(ops[1], lineno);
        if (dst_disp != 0 || src_disp != 0) {
          fail(lineno, "movs operands take no displacement");
        }
        fb_->movs(dst, src, size);
        break;
      }
      case Pattern::kJmp: {
        want(1);
        std::istringstream in(ops[0]);
        std::string name;
        in >> name;
        fb_->jmp(label(name));
        break;
      }
      case Pattern::kBr: {
        want(2);
        const R cond = int_reg(ops[0], lineno);
        std::istringstream in(ops[1]);
        std::string name;
        in >> name;
        if (mn.op == Op::kBrZ) {
          fb_->brz(cond, label(name));
        } else {
          fb_->brnz(cond, label(name));
        }
        break;
      }
      case Pattern::kCall: {
        want(1);
        std::istringstream in(ops[0]);
        std::string name;
        in >> name;
        fb_->call(name);
        break;
      }
      case Pattern::kSys: {
        want(1);
        std::istringstream in(ops[0]);
        std::string name;
        in >> name;
        if (auto it2 = sys_names().find(name); it2 != sys_names().end()) {
          fb_->sys(it2->second);
        } else {
          fb_->sys(static_cast<isa::Sys>(immediate(name, lineno)));
        }
        break;
      }
    }
    if (parsed.predicate) {
      fb_->predicate_last(int_reg(*parsed.predicate, lineno));
    }
  }

  ProgramBuilder prog_;
  FunctionBuilder* fb_ = nullptr;
  std::map<std::string, FunctionBuilder::Label> labels_;
  std::map<std::string, std::uint64_t> globals_;
  std::string entry_;
};

}  // namespace

vm::Program assemble(const std::string& source) {
  Assembler assembler;
  return assembler.run(source);
}

}  // namespace tq::gasm
