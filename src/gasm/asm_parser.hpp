// Textual guest assembly.
//
// The builder DSL is the programmatic front end; this parser is the human
// one — a line-oriented assembly syntax matching the disassembler's output
// conventions, so small guest programs (tests, experiments, regression
// cases) can live as plain text:
//
//     ; a tiny two-function program
//     .global buf 64
//     .func helper
//         movi   r2, 7
//         ret
//     .func main
//         movi   r1, buf
//         call   helper
//         store8 [r1+0], r2
//     loop:
//         addi   r2, r2, -1
//         brnz   r2, loop
//         mov    r3, r2      ?r2     ; predicated on r2
//         halt
//
// Syntax summary:
//   .func NAME [@library|@os]   start a function (first .func = entry unless
//                               a later `.entry NAME` overrides)
//   .entry NAME                 select the entry function
//   .global NAME SIZE [ALIGN]   reserve zeroed global storage; NAME usable
//                               as an immediate afterwards
//   LABEL:                      bind a branch target
//   MNEMONIC operands           one instruction; memory mnemonics carry the
//                               size suffix (load8, store4, movs64, ...);
//                               operands are rN / sp / fN, [reg+disp],
//                               integer or float immediates, label or
//                               function names. `?rN` predicates the line.
//   ; or # start a comment.
#pragma once

#include <string>

#include "vm/program.hpp"

namespace tq::gasm {

/// Assemble a full program from source text. Throws tq::Error with a
/// line-numbered message on any syntax or semantic problem.
vm::Program assemble(const std::string& source);

}  // namespace tq::gasm
