#include "gasm/builder.hpp"

#include <bit>

#include "support/check.hpp"

namespace tq::gasm {

using isa::Instr;
using isa::Op;

// ---- FunctionBuilder --------------------------------------------------------

FunctionBuilder::Label FunctionBuilder::new_label() {
  label_targets_.push_back(-1);
  return static_cast<Label>(label_targets_.size() - 1);
}

void FunctionBuilder::bind(Label label) {
  TQUAD_CHECK(label < label_targets_.size(), "unknown label");
  TQUAD_CHECK(label_targets_[label] == -1, "label bound twice");
  label_targets_[label] = static_cast<std::int64_t>(code_.size());
}

void FunctionBuilder::emit_branch(Op op, R cond, Label label) {
  TQUAD_CHECK(label < label_targets_.size(), "unknown label");
  Instr ins;
  ins.op = op;
  ins.ra = cond.idx;
  fixups_.emplace_back(code_.size(), label);
  emit(ins);
}

void FunctionBuilder::jmp(Label label) { emit_branch(Op::kJmp, R{0}, label); }
void FunctionBuilder::brz(R cond, Label label) { emit_branch(Op::kBrZ, cond, label); }
void FunctionBuilder::brnz(R cond, Label label) { emit_branch(Op::kBrNZ, cond, label); }

void FunctionBuilder::count_loop(R counter, std::int64_t start, R limit,
                                 const std::function<void()>& body) {
  movi(counter, start);
  const Label head = new_label();
  const Label done = new_label();
  bind(head);
  // exit when counter >= limit
  slts(R{0}, counter, limit);  // r0 is a scratch here; restored by next movi
  brz(R{0}, done);
  movi(R{0}, 0);
  body();
  addi(counter, counter, 1);
  jmp(head);
  bind(done);
  movi(R{0}, 0);
}

void FunctionBuilder::count_loop_imm(R counter, std::int64_t start, std::int64_t limit,
                                     const std::function<void()>& body) {
  movi(counter, start);
  const Label head = new_label();
  const Label done = new_label();
  bind(head);
  sltsi(R{0}, counter, limit);
  brz(R{0}, done);
  movi(R{0}, 0);
  body();
  addi(counter, counter, 1);
  jmp(head);
  bind(done);
  movi(R{0}, 0);
}

void FunctionBuilder::call(const std::string& callee) {
  call_sites_.emplace_back(code_.size(), callee);
  Instr ins;
  ins.op = Op::kCall;
  emit(ins);
}

void FunctionBuilder::ret() { emit(Instr{.op = Op::kRet}); }
void FunctionBuilder::halt() { emit(Instr{.op = Op::kHalt}); }

void FunctionBuilder::sys(isa::Sys sysno) {
  Instr ins;
  ins.op = Op::kSys;
  ins.imm = static_cast<std::int64_t>(sysno);
  emit(ins);
}

void FunctionBuilder::enter(std::int64_t bytes) { addi(SP, SP, -bytes); }
void FunctionBuilder::leave(std::int64_t bytes) { addi(SP, SP, bytes); }

#define TQ_RRR(NAME, OP)                                     \
  void FunctionBuilder::NAME(R rd, R ra, R rb) {             \
    emit(Instr{.op = OP, .rd = rd.idx, .ra = ra.idx, .rb = rb.idx}); \
  }
TQ_RRR(add, Op::kAdd)
TQ_RRR(sub, Op::kSub)
TQ_RRR(mul, Op::kMul)
TQ_RRR(divs, Op::kDivS)
TQ_RRR(rems, Op::kRemS)
TQ_RRR(and_, Op::kAnd)
TQ_RRR(or_, Op::kOr)
TQ_RRR(xor_, Op::kXor)
TQ_RRR(shl, Op::kShl)
TQ_RRR(shrl, Op::kShrL)
TQ_RRR(shra, Op::kShrA)
TQ_RRR(slts, Op::kSltS)
TQ_RRR(sltu, Op::kSltU)
TQ_RRR(seq, Op::kSeq)
#undef TQ_RRR

#define TQ_RRI(NAME, OP)                                              \
  void FunctionBuilder::NAME(R rd, R ra, std::int64_t imm) {          \
    emit(Instr{.op = OP, .rd = rd.idx, .ra = ra.idx, .imm = imm});    \
  }
TQ_RRI(addi, Op::kAddI)
TQ_RRI(muli, Op::kMulI)
TQ_RRI(andi, Op::kAndI)
TQ_RRI(ori, Op::kOrI)
TQ_RRI(xori, Op::kXorI)
TQ_RRI(shli, Op::kShlI)
TQ_RRI(shrli, Op::kShrLI)
TQ_RRI(shrai, Op::kShrAI)
TQ_RRI(sltsi, Op::kSltSI)
#undef TQ_RRI

void FunctionBuilder::movi(R rd, std::int64_t imm) {
  emit(Instr{.op = Op::kMovI, .rd = rd.idx, .imm = imm});
}
void FunctionBuilder::mov(R rd, R ra) {
  emit(Instr{.op = Op::kMov, .rd = rd.idx, .ra = ra.idx});
}

#define TQ_FFF(NAME, OP)                                             \
  void FunctionBuilder::NAME(F fd, F fa, F fb) {                     \
    emit(Instr{.op = OP, .rd = fd.idx, .ra = fa.idx, .rb = fb.idx}); \
  }
TQ_FFF(fadd, Op::kFAdd)
TQ_FFF(fsub, Op::kFSub)
TQ_FFF(fmul, Op::kFMul)
TQ_FFF(fdiv, Op::kFDiv)
TQ_FFF(fmin, Op::kFMin)
TQ_FFF(fmax, Op::kFMax)
#undef TQ_FFF

#define TQ_FF(NAME, OP)                                  \
  void FunctionBuilder::NAME(F fd, F fa) {               \
    emit(Instr{.op = OP, .rd = fd.idx, .ra = fa.idx});   \
  }
TQ_FF(fneg, Op::kFNeg)
TQ_FF(fabs_, Op::kFAbs)
TQ_FF(fsqrt, Op::kFSqrt)
TQ_FF(fsin, Op::kFSin)
TQ_FF(fcos, Op::kFCos)
TQ_FF(fmov, Op::kFMov)
#undef TQ_FF

void FunctionBuilder::fmovi(F fd, double value) {
  emit(Instr{.op = Op::kFMovI, .rd = fd.idx, .imm = std::bit_cast<std::int64_t>(value)});
}

#define TQ_RFF(NAME, OP)                                             \
  void FunctionBuilder::NAME(R rd, F fa, F fb) {                     \
    emit(Instr{.op = OP, .rd = rd.idx, .ra = fa.idx, .rb = fb.idx}); \
  }
TQ_RFF(fcmplt, Op::kFCmpLt)
TQ_RFF(fcmple, Op::kFCmpLe)
TQ_RFF(fcmpeq, Op::kFCmpEq)
#undef TQ_RFF

void FunctionBuilder::i2f(F fd, R ra) {
  emit(Instr{.op = Op::kI2F, .rd = fd.idx, .ra = ra.idx});
}
void FunctionBuilder::f2i(R rd, F fa) {
  emit(Instr{.op = Op::kF2I, .rd = rd.idx, .ra = fa.idx});
}

void FunctionBuilder::load(R rd, R base, std::int64_t off, unsigned size) {
  emit(Instr{.op = Op::kLoad,
             .rd = rd.idx,
             .ra = base.idx,
             .size = static_cast<std::uint8_t>(size),
             .imm = off});
}
void FunctionBuilder::loads(R rd, R base, std::int64_t off, unsigned size) {
  emit(Instr{.op = Op::kLoadS,
             .rd = rd.idx,
             .ra = base.idx,
             .size = static_cast<std::uint8_t>(size),
             .imm = off});
}
void FunctionBuilder::store(R base, std::int64_t off, R src, unsigned size) {
  emit(Instr{.op = Op::kStore,
             .ra = base.idx,
             .rb = src.idx,
             .size = static_cast<std::uint8_t>(size),
             .imm = off});
}
void FunctionBuilder::fload(F fd, R base, std::int64_t off) {
  emit(Instr{.op = Op::kFLoad, .rd = fd.idx, .ra = base.idx, .size = 8, .imm = off});
}
void FunctionBuilder::fstore(R base, std::int64_t off, F src) {
  emit(Instr{.op = Op::kFStore, .ra = base.idx, .rb = src.idx, .size = 8, .imm = off});
}
void FunctionBuilder::fload4(F fd, R base, std::int64_t off) {
  emit(Instr{.op = Op::kFLoad4, .rd = fd.idx, .ra = base.idx, .size = 4, .imm = off});
}
void FunctionBuilder::fstore4(R base, std::int64_t off, F src) {
  emit(Instr{.op = Op::kFStore4, .ra = base.idx, .rb = src.idx, .size = 4, .imm = off});
}
void FunctionBuilder::prefetch(R base, std::int64_t off, unsigned size) {
  emit(Instr{.op = Op::kPrefetch,
             .ra = base.idx,
             .size = static_cast<std::uint8_t>(size),
             .imm = off});
}

void FunctionBuilder::movs(R dst, R src, unsigned size) {
  emit(Instr{.op = Op::kMovs,
             .rd = dst.idx,
             .ra = src.idx,
             .size = static_cast<std::uint8_t>(size)});
}

void FunctionBuilder::predicate_last(R pred) {
  TQUAD_CHECK(!code_.empty(), "no instruction to predicate");
  code_.back().flags |= isa::kFlagPredicated;
  code_.back().pr = pred.idx;
}

std::vector<Instr> FunctionBuilder::finalize() {
  for (const auto& [index, label] : fixups_) {
    const std::int64_t target = label_targets_[label];
    TQUAD_CHECK(target >= 0, "unbound label in function '" + name_ + "'");
    code_[index].imm = target;
  }
  return std::move(code_);
}

// ---- ProgramBuilder ---------------------------------------------------------

FunctionBuilder& ProgramBuilder::begin_function(const std::string& name,
                                                vm::ImageKind image) {
  TQUAD_CHECK(!built_, "builder already consumed");
  for (const auto& fn : functions_) {
    TQUAD_CHECK(fn->name_ != name, "duplicate function '" + name + "'");
  }
  functions_.push_back(
      std::unique_ptr<FunctionBuilder>(new FunctionBuilder(*this, name, image)));
  return *functions_.back();
}

std::uint64_t ProgramBuilder::alloc_global(const std::string& name, std::uint64_t size,
                                           std::uint64_t align) {
  TQUAD_CHECK(!built_, "builder already consumed");
  TQUAD_CHECK(align != 0 && (align & (align - 1)) == 0, "alignment must be a power of 2");
  TQUAD_CHECK(!globals_.contains(name), "duplicate global '" + name + "'");
  global_cursor_ = (global_cursor_ + align - 1) & ~(align - 1);
  const std::uint64_t addr = global_cursor_;
  global_cursor_ += size;
  TQUAD_CHECK(global_cursor_ < vm::kHeapBase, "global segment overflow");
  globals_.emplace(name, addr);
  global_extents_.emplace(name, std::make_pair(addr, size));
  return addr;
}

void ProgramBuilder::init_data(std::uint64_t addr, std::vector<std::uint8_t> bytes) {
  data_.push_back(vm::DataInit{addr, std::move(bytes)});
}

std::uint64_t ProgramBuilder::global(const std::string& name) const {
  auto it = globals_.find(name);
  TQUAD_CHECK(it != globals_.end(), "unknown global '" + name + "'");
  return it->second;
}

vm::Program ProgramBuilder::build(const std::string& entry_name) {
  TQUAD_CHECK(!built_, "builder already consumed");
  built_ = true;
  // Name -> id map.
  std::map<std::string, std::uint32_t> ids;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    ids.emplace(functions_[i]->name_, static_cast<std::uint32_t>(i));
  }
  vm::Program prog;
  for (auto& fb : functions_) {
    vm::Function fn;
    fn.name = fb->name_;
    fn.image = fb->image_;
    // Resolve call sites before finalize steals the code.
    for (const auto& [index, callee] : fb->call_sites_) {
      auto it = ids.find(callee);
      if (it == ids.end()) {
        TQUAD_THROW("function '" + fb->name_ + "' calls unknown '" + callee + "'");
      }
      fb->code_[index].imm = it->second;
    }
    fn.code = fb->finalize();
    prog.add_function(std::move(fn));
  }
  for (auto& init : data_) prog.add_data(std::move(init));
  for (const auto& [name, extent] : global_extents_) {
    prog.add_global(vm::GlobalVar{name, extent.first, extent.second});
  }
  auto entry = prog.find(entry_name);
  if (!entry) TQUAD_THROW("entry function '" + entry_name + "' not defined");
  prog.set_entry(*entry);
  prog.validate();
  return prog;
}

}  // namespace tq::gasm
