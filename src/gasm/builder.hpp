// Guest program construction DSL.
//
// Guest applications (the hArtes-wfs reimplementation, test programs,
// synthetic workloads) are written in C++ against these builders and lowered
// to isa::Instr streams. The builder owns label resolution, named global
// allocation and by-name call linking, so guest code reads like assembly
// with structured loops:
//
//   FunctionBuilder& f = prog.begin_function("zeroRealVec");
//   f.count_loop(R{2}, 0, R{1}, [&] {            // for r2 in [0, r1)
//     f.shli(R{3}, R{2}, 3);
//     f.add(R{3}, R{3}, R{4});
//     f.fmovi(F{1}, 0.0);
//     f.fstore(R{3}, 0, F{1});
//   });
//   f.ret();
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "vm/program.hpp"

namespace tq::gasm {

/// Strong wrapper for integer register indices (avoids int/reg mixups).
struct R {
  std::uint8_t idx;
};
/// Strong wrapper for floating-point register indices.
struct F {
  std::uint8_t idx;
};

/// The stack pointer register.
inline constexpr R SP{isa::kSp};

class ProgramBuilder;

/// Builds one guest function. Obtained from ProgramBuilder::begin_function;
/// remains valid until build().
class FunctionBuilder {
 public:
  using Label = std::uint32_t;

  // ---- labels and control flow -------------------------------------------
  Label new_label();
  void bind(Label label);
  void jmp(Label label);
  void brz(R cond, Label label);
  void brnz(R cond, Label label);

  /// Structured counted loop: `counter` runs over [start, limit). The limit
  /// register must stay live across the body. Empty ranges skip the body.
  void count_loop(R counter, std::int64_t start, R limit,
                  const std::function<void()>& body);
  /// Same with an immediate limit.
  void count_loop_imm(R counter, std::int64_t start, std::int64_t limit,
                      const std::function<void()>& body);

  // ---- calls / returns ----------------------------------------------------
  /// Call a function by name; resolved when the program is built.
  void call(const std::string& callee);
  void ret();
  void halt();
  void sys(isa::Sys sysno);

  /// Open a stack frame of `bytes` (must be paired with leave()+ret()).
  void enter(std::int64_t bytes);
  void leave(std::int64_t bytes);

  // ---- integer ops ----------------------------------------------------------
  void add(R rd, R ra, R rb);
  void sub(R rd, R ra, R rb);
  void mul(R rd, R ra, R rb);
  void divs(R rd, R ra, R rb);
  void rems(R rd, R ra, R rb);
  void and_(R rd, R ra, R rb);
  void or_(R rd, R ra, R rb);
  void xor_(R rd, R ra, R rb);
  void shl(R rd, R ra, R rb);
  void shrl(R rd, R ra, R rb);
  void shra(R rd, R ra, R rb);
  void slts(R rd, R ra, R rb);
  void sltu(R rd, R ra, R rb);
  void seq(R rd, R ra, R rb);
  void addi(R rd, R ra, std::int64_t imm);
  void muli(R rd, R ra, std::int64_t imm);
  void andi(R rd, R ra, std::int64_t imm);
  void ori(R rd, R ra, std::int64_t imm);
  void xori(R rd, R ra, std::int64_t imm);
  void shli(R rd, R ra, std::int64_t imm);
  void shrli(R rd, R ra, std::int64_t imm);
  void shrai(R rd, R ra, std::int64_t imm);
  void sltsi(R rd, R ra, std::int64_t imm);
  void movi(R rd, std::int64_t imm);
  void mov(R rd, R ra);

  // ---- floating point ---------------------------------------------------------
  void fadd(F fd, F fa, F fb);
  void fsub(F fd, F fa, F fb);
  void fmul(F fd, F fa, F fb);
  void fdiv(F fd, F fa, F fb);
  void fneg(F fd, F fa);
  void fabs_(F fd, F fa);
  void fsqrt(F fd, F fa);
  void fsin(F fd, F fa);
  void fcos(F fd, F fa);
  void fmov(F fd, F fa);
  void fmovi(F fd, double value);
  void fmin(F fd, F fa, F fb);
  void fmax(F fd, F fa, F fb);
  void fcmplt(R rd, F fa, F fb);
  void fcmple(R rd, F fa, F fb);
  void fcmpeq(R rd, F fa, F fb);
  void i2f(F fd, R ra);
  void f2i(R rd, F fa);

  // ---- memory --------------------------------------------------------------------
  void load(R rd, R base, std::int64_t off, unsigned size);
  void loads(R rd, R base, std::int64_t off, unsigned size);
  void store(R base, std::int64_t off, R src, unsigned size);
  void fload(F fd, R base, std::int64_t off);
  void fstore(R base, std::int64_t off, F src);
  void fload4(F fd, R base, std::int64_t off);
  void fstore4(R base, std::int64_t off, F src);
  void prefetch(R base, std::int64_t off, unsigned size);
  /// String move: copy `size` (8/16/32/64) bytes from [src] to [dst], then
  /// advance both registers by `size` (x86 rep-movs analogue).
  void movs(R dst, R src, unsigned size);

  /// Mark the most recently emitted instruction as predicated on `pred`.
  void predicate_last(R pred);

  /// Append a pre-built instruction verbatim (used by the text assembler;
  /// branch/call targets must be resolved by the caller or via labels).
  void emit_raw(isa::Instr ins) { emit(ins); }

  /// Number of instructions emitted so far.
  std::size_t size() const noexcept { return code_.size(); }

 private:
  friend class ProgramBuilder;
  FunctionBuilder(ProgramBuilder& owner, std::string name, vm::ImageKind image)
      : owner_(owner), name_(std::move(name)), image_(image) {}

  void emit(isa::Instr ins) { code_.push_back(ins); }
  void emit_branch(isa::Op op, R cond, Label label);
  std::vector<isa::Instr> finalize();

  ProgramBuilder& owner_;
  std::string name_;
  vm::ImageKind image_;
  std::vector<isa::Instr> code_;
  std::vector<std::int64_t> label_targets_;          // label -> pc or -1
  std::vector<std::pair<std::size_t, Label>> fixups_;  // instr index -> label
  std::vector<std::pair<std::size_t, std::string>> call_sites_;
};

/// Accumulates functions and data, then links into a validated vm::Program.
class ProgramBuilder {
 public:
  /// Start a new function; the reference stays valid until build().
  FunctionBuilder& begin_function(const std::string& name,
                                  vm::ImageKind image = vm::ImageKind::kMain);

  /// Reserve `size` bytes of zeroed global storage; returns its address.
  std::uint64_t alloc_global(const std::string& name, std::uint64_t size,
                             std::uint64_t align = 8);

  /// Set initial contents for (part of) a previously allocated global.
  void init_data(std::uint64_t addr, std::vector<std::uint8_t> bytes);

  /// Address of a named global; throws if unknown.
  std::uint64_t global(const std::string& name) const;

  /// Link: resolve call sites by name, set the entry function, validate.
  /// The builder is consumed (one-shot).
  vm::Program build(const std::string& entry_name);

 private:
  friend class FunctionBuilder;
  std::vector<std::unique_ptr<FunctionBuilder>> functions_;
  std::map<std::string, std::uint64_t> globals_;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> global_extents_;
  std::vector<vm::DataInit> data_;
  std::uint64_t global_cursor_ = vm::kGlobalBase;
  bool built_ = false;
};

}  // namespace tq::gasm
