// The workload zoo: every guest program with a host-side golden model,
// enumerable behind one interface.
//
// Cross-cutting suites (session differential, fault-injection prefix
// contract, pipeline byte-equality, trace replay differential) iterate
// registry() instead of hardcoding workload lists, so each contract is
// enforced on every memory shape — streaming, strided, chaotic, mixed and
// phase-sharp — and a newly registered workload inherits every contract for
// free. Benches reuse the same entries at bench_scale to gate measured
// signatures against the declared shape.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vm/host_env.hpp"
#include "vm/machine.hpp"
#include "vm/program.hpp"

namespace tq::workloads {

/// Declared memory shape of a workload; benches assert the measured
/// signature matches (see bench_workload_signatures).
enum class Shape {
  kStreaming,   ///< sequential, bandwidth-bound (stream)
  kStrided,     ///< regular strides / tiles (matmul)
  kChaotic,     ///< data-dependent addresses (chase, histogram)
  kMixed,       ///< sequential and random traffic interleaved (hashjoin, wfs)
  kPhaseSharp,  ///< disjoint per-kernel phases in time and space (phased)
};

const char* shape_name(Shape shape);

/// One ready-to-run build of a workload. An Instance is single-shot: the
/// host environment accumulates guest output, so run each Instance exactly
/// once and build a fresh one per run. Builds are deterministic — two
/// Instances from the same Entry serialize to identical program bytes.
struct Instance {
  vm::Program program;
  vm::HostEnv host;  ///< descriptors pre-wired (wfs: fd 0 in, fd 1 out)
  /// Bytes the guest expects attached as descriptor 0 (empty = no input).
  /// Already attached to `host`; exposed so zoo_gen can write them to disk
  /// for CLI runs against the exported image.
  std::vector<std::uint8_t> input;
  /// Golden-model check, called after the run with the machine that executed
  /// `program` against `host`. Returns "" on success, else a description of
  /// the first mismatch.
  std::function<std::string(const Instance&, vm::Machine&)> verify;
};

/// A registered workload: how to build it and what shape to expect.
struct Entry {
  std::string name;
  Shape shape = Shape::kStreaming;
  /// Lower bound on the phase count tQUAD phase detection must find at
  /// bench scale (0 = not asserted).
  std::uint32_t expected_phases = 0;
  std::function<Instance()> build;        ///< test scale (fast, suite-friendly)
  std::function<Instance()> build_bench;  ///< bench scale (signature-stable)
};

/// The zoo, in registration order. Stable across calls.
const std::vector<Entry>& registry();

/// Lookup by name; throws tq::Error for unknown names.
const Entry& find_workload(const std::string& name);

/// All registered names, in registration order (for test parameterisation
/// and `zoo_gen -list`).
std::vector<std::string> workload_names();

}  // namespace tq::workloads
