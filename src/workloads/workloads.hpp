// Synthetic guest workloads with well-known memory behaviour.
//
// The wfs case study is one point in workload space; these generators cover
// the canonical HPC access patterns, each with a host-side expected result
// so tests can prove the guest computes what it claims:
//
//   * stream   — the STREAM benchmark's four kernels (copy/scale/add/triad)
//                over f64 vectors: pure streaming, bandwidth-bound;
//   * matmul   — dense f64 matrix multiply, naive (row x column, poor
//                locality) or tiled (blocked working set): the classic
//                locality ablation;
//   * chase    — pointer chasing over a shuffled permutation cycle:
//                latency-bound, one 8-byte read per hop, near-zero B/instr;
//   * histogram— random scatter increments into a bucket array: read-modify-
//                write traffic with data-dependent addresses;
//   * hashjoin — build + probe over an open-addressing hash table: the build
//                side streams a relation sequentially while scattering into
//                the table, the probe side streams keys while chasing table
//                slots at hash-random addresses (the classic *mixed* shape);
//   * phased   — a four-stage pipeline (fill → scan → reverse → gather) over
//                four distinct buffers, each stage its own kernel called
//                exactly once: sharp phase boundaries in time and disjoint
//                *written* address ranges per phase, built to stress tQUAD
//                phase detection and the address-map heatmap.
//
// Each builder returns the Program plus the guest addresses of its buffers
// for post-run verification. See registry.hpp for the workload zoo that
// enumerates these (plus the wfs case study) behind one interface.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/program.hpp"

namespace tq::workloads {

/// STREAM: copy, scale, add, triad over vectors of `elements` f64 values,
/// repeated `iterations` times. Kernels are named "stream_copy",
/// "stream_scale", "stream_add", "stream_triad".
struct StreamArtifacts {
  vm::Program program;
  std::uint64_t a_addr = 0;  ///< f64[elements]
  std::uint64_t b_addr = 0;
  std::uint64_t c_addr = 0;
  std::uint32_t elements = 0;
  std::uint32_t iterations = 0;
  double scalar = 3.0;
};
StreamArtifacts build_stream(std::uint32_t elements, std::uint32_t iterations = 1);

/// Dense matmul C = A * B over n x n f64 matrices. A and B are initialised
/// with deterministic values; `tiled` selects the blocked variant with the
/// given tile size. Kernel name: "matmul_naive" or "matmul_tiled".
struct MatmulArtifacts {
  vm::Program program;
  std::uint64_t a_addr = 0;
  std::uint64_t b_addr = 0;
  std::uint64_t c_addr = 0;
  std::uint32_t n = 0;
  bool tiled = false;
};
MatmulArtifacts build_matmul(std::uint32_t n, bool tiled, std::uint32_t tile = 8);

/// Host-side reference for the matmul initialisation + multiply.
std::vector<double> matmul_reference(std::uint32_t n);

/// Pointer chase: a shuffled single-cycle permutation of `nodes` 8-byte
/// slots, walked `hops` times. Kernel name: "chase". The final node index
/// is left in guest register r1 at halt.
struct ChaseArtifacts {
  vm::Program program;
  std::uint64_t nodes_addr = 0;
  std::uint32_t nodes = 0;
  std::uint64_t hops = 0;
  std::uint64_t expected_final = 0;  ///< node index after `hops` steps
};
ChaseArtifacts build_chase(std::uint32_t nodes, std::uint64_t hops,
                           std::uint64_t seed = 42);

/// Histogram: `samples` pseudo-random (xorshift in guest code) increments
/// into `buckets` 8-byte counters. Kernel name: "histogram".
struct HistogramArtifacts {
  vm::Program program;
  std::uint64_t buckets_addr = 0;
  std::uint32_t buckets = 0;
  std::uint64_t samples = 0;
  std::vector<std::uint64_t> expected;  ///< host-computed bucket counts
};
HistogramArtifacts build_histogram(std::uint32_t buckets, std::uint64_t samples,
                                   std::uint64_t seed = 99);

/// Hash join: `build_rows` (key, payload) pairs are inserted into an
/// open-addressing table (linear probing, power-of-two `slots` >= 2x rows),
/// then `probe_rows` keys — roughly half of them hits — are looked up and
/// the matched payloads summed. Kernels: "hj_build" (sequential relation
/// read + hash-scattered table writes) and "hj_probe" (sequential key read
/// + hash-random table reads). The guest stores the payload sum and the
/// match count at `result_addr`; the host golden model mirrors the exact
/// insert/probe order.
struct HashJoinArtifacts {
  vm::Program program;
  std::uint64_t build_keys_addr = 0;  ///< u64[build_rows]
  std::uint64_t build_vals_addr = 0;  ///< u64[build_rows]
  std::uint64_t probe_keys_addr = 0;  ///< u64[probe_rows]
  std::uint64_t table_addr = 0;       ///< (key, payload) u64 pairs, slots of 16 B
  std::uint64_t result_addr = 0;      ///< u64[2]: payload sum, match count
  std::uint32_t build_rows = 0;
  std::uint32_t probe_rows = 0;
  std::uint32_t slots = 0;
  std::uint64_t expected_sum = 0;      ///< host-computed payload sum
  std::uint64_t expected_matches = 0;  ///< host-computed probe hits
};
HashJoinArtifacts build_hashjoin(std::uint32_t build_rows, std::uint32_t probe_rows,
                                 std::uint64_t seed = 7);

/// Multi-phase pipeline: four kernels run back to back, each `reps` passes
/// over `elements` u64 values (elements must be a power of two), writing a
/// distinct buffer:
///   phase_fill    — writes A from a mixing function of (index, pass);
///   phase_scan    — reads A forward, accumulates into B;
///   phase_reverse — reads B backward, accumulates into C;
///   phase_gather  — xorshift-chaotic gathers from C, scatters into D.
/// Phase boundaries are instruction-sharp (one call per kernel from main)
/// and the written ranges A/B/C/D are disjoint, so tQUAD phase detection
/// must find at least kPhases phases and the address-map heatmap shows one
/// hot written band per phase.
struct PhasedArtifacts {
  static constexpr std::uint32_t kPhases = 4;
  vm::Program program;
  std::uint64_t buffer_addr[kPhases] = {};  ///< A, B, C, D
  std::uint32_t elements = 0;
  std::uint32_t reps = 0;
  std::uint64_t seed = 0;
  /// Host-computed final contents of each buffer.
  std::vector<std::uint64_t> expected[kPhases];
};
PhasedArtifacts build_phased(std::uint32_t elements, std::uint32_t reps,
                             std::uint64_t seed = 11);

}  // namespace tq::workloads
