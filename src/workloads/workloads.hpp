// Synthetic guest workloads with well-known memory behaviour.
//
// The wfs case study is one point in workload space; these generators cover
// the canonical HPC access patterns, each with a host-side expected result
// so tests can prove the guest computes what it claims:
//
//   * stream   — the STREAM benchmark's four kernels (copy/scale/add/triad)
//                over f64 vectors: pure streaming, bandwidth-bound;
//   * matmul   — dense f64 matrix multiply, naive (row x column, poor
//                locality) or tiled (blocked working set): the classic
//                locality ablation;
//   * chase    — pointer chasing over a shuffled permutation cycle:
//                latency-bound, one 8-byte read per hop, near-zero B/instr;
//   * histogram— random scatter increments into a bucket array: read-modify-
//                write traffic with data-dependent addresses.
//
// Each builder returns the Program plus the guest addresses of its buffers
// for post-run verification.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/program.hpp"

namespace tq::workloads {

/// STREAM: copy, scale, add, triad over vectors of `elements` f64 values,
/// repeated `iterations` times. Kernels are named "stream_copy",
/// "stream_scale", "stream_add", "stream_triad".
struct StreamArtifacts {
  vm::Program program;
  std::uint64_t a_addr = 0;  ///< f64[elements]
  std::uint64_t b_addr = 0;
  std::uint64_t c_addr = 0;
  std::uint32_t elements = 0;
  std::uint32_t iterations = 0;
  double scalar = 3.0;
};
StreamArtifacts build_stream(std::uint32_t elements, std::uint32_t iterations = 1);

/// Dense matmul C = A * B over n x n f64 matrices. A and B are initialised
/// with deterministic values; `tiled` selects the blocked variant with the
/// given tile size. Kernel name: "matmul_naive" or "matmul_tiled".
struct MatmulArtifacts {
  vm::Program program;
  std::uint64_t a_addr = 0;
  std::uint64_t b_addr = 0;
  std::uint64_t c_addr = 0;
  std::uint32_t n = 0;
  bool tiled = false;
};
MatmulArtifacts build_matmul(std::uint32_t n, bool tiled, std::uint32_t tile = 8);

/// Host-side reference for the matmul initialisation + multiply.
std::vector<double> matmul_reference(std::uint32_t n);

/// Pointer chase: a shuffled single-cycle permutation of `nodes` 8-byte
/// slots, walked `hops` times. Kernel name: "chase". The final node index
/// is left in guest register r1 at halt.
struct ChaseArtifacts {
  vm::Program program;
  std::uint64_t nodes_addr = 0;
  std::uint32_t nodes = 0;
  std::uint64_t hops = 0;
  std::uint64_t expected_final = 0;  ///< node index after `hops` steps
};
ChaseArtifacts build_chase(std::uint32_t nodes, std::uint64_t hops,
                           std::uint64_t seed = 42);

/// Histogram: `samples` pseudo-random (xorshift in guest code) increments
/// into `buckets` 8-byte counters. Kernel name: "histogram".
struct HistogramArtifacts {
  vm::Program program;
  std::uint64_t buckets_addr = 0;
  std::uint32_t buckets = 0;
  std::uint64_t samples = 0;
  std::vector<std::uint64_t> expected;  ///< host-computed bucket counts
};
HistogramArtifacts build_histogram(std::uint32_t buckets, std::uint64_t samples,
                                   std::uint64_t seed = 99);

}  // namespace tq::workloads
