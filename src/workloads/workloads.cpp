#include "workloads/workloads.hpp"

#include <cstring>
#include <numeric>

#include "gasm/builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace tq::workloads {

using gasm::F;
using gasm::FunctionBuilder;
using gasm::ProgramBuilder;
using gasm::R;

namespace {

std::vector<std::uint8_t> u64_bytes(const std::vector<std::uint64_t>& values) {
  std::vector<std::uint8_t> bytes(values.size() * 8);
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

std::vector<std::uint8_t> f64_bytes(const std::vector<double>& values) {
  std::vector<std::uint8_t> bytes(values.size() * 8);
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

}  // namespace

// ---- STREAM ----------------------------------------------------------------

StreamArtifacts build_stream(std::uint32_t elements, std::uint32_t iterations) {
  TQUAD_CHECK(elements % 8 == 0, "stream length must be a multiple of 8");
  TQUAD_CHECK(iterations >= 1, "need at least one iteration");
  StreamArtifacts art;
  art.elements = elements;
  art.iterations = iterations;
  ProgramBuilder prog;
  const std::int64_t n = elements;
  art.a_addr = prog.alloc_global("a", n * 8, 64);
  art.b_addr = prog.alloc_global("b", n * 8, 64);
  art.c_addr = prog.alloc_global("c", n * 8, 64);
  prog.init_data(art.a_addr, f64_bytes(std::vector<double>(elements, 2.0)));
  prog.init_data(art.b_addr, f64_bytes(std::vector<double>(elements, 0.5)));

  // copy: c = a (block moves, the pure-bandwidth kernel)
  {
    auto& f = prog.begin_function("stream_copy");
    f.movi(R{8}, static_cast<std::int64_t>(art.c_addr));
    f.movi(R{9}, static_cast<std::int64_t>(art.a_addr));
    f.movi(R{10}, n * 8 / 64);
    const auto head = f.new_label();
    const auto done = f.new_label();
    f.bind(head);
    f.brz(R{10}, done);
    f.movs(R{8}, R{9}, 64);
    f.addi(R{10}, R{10}, -1);
    f.jmp(head);
    f.bind(done);
    f.ret();
  }
  // scale: b = scalar * c
  {
    auto& f = prog.begin_function("stream_scale");
    f.movi(R{8}, static_cast<std::int64_t>(art.c_addr));
    f.movi(R{9}, static_cast<std::int64_t>(art.b_addr));
    f.fmovi(F{8}, art.scalar);
    f.count_loop_imm(R{10}, 0, n, [&] {
      f.shli(R{11}, R{10}, 3);
      f.add(R{12}, R{11}, R{8});
      f.fload(F{9}, R{12}, 0);
      f.fmul(F{9}, F{9}, F{8});
      f.add(R{12}, R{11}, R{9});
      f.fstore(R{12}, 0, F{9});
    });
    f.ret();
  }
  // add: c = a + b
  {
    auto& f = prog.begin_function("stream_add");
    f.movi(R{8}, static_cast<std::int64_t>(art.a_addr));
    f.movi(R{9}, static_cast<std::int64_t>(art.b_addr));
    f.movi(R{13}, static_cast<std::int64_t>(art.c_addr));
    f.count_loop_imm(R{10}, 0, n, [&] {
      f.shli(R{11}, R{10}, 3);
      f.add(R{12}, R{11}, R{8});
      f.fload(F{9}, R{12}, 0);
      f.add(R{12}, R{11}, R{9});
      f.fload(F{10}, R{12}, 0);
      f.fadd(F{9}, F{9}, F{10});
      f.add(R{12}, R{11}, R{13});
      f.fstore(R{12}, 0, F{9});
    });
    f.ret();
  }
  // triad: a = b + scalar * c
  {
    auto& f = prog.begin_function("stream_triad");
    f.movi(R{8}, static_cast<std::int64_t>(art.b_addr));
    f.movi(R{9}, static_cast<std::int64_t>(art.c_addr));
    f.movi(R{13}, static_cast<std::int64_t>(art.a_addr));
    f.fmovi(F{8}, art.scalar);
    f.count_loop_imm(R{10}, 0, n, [&] {
      f.shli(R{11}, R{10}, 3);
      f.add(R{12}, R{11}, R{9});
      f.fload(F{9}, R{12}, 0);
      f.fmul(F{9}, F{9}, F{8});
      f.add(R{12}, R{11}, R{8});
      f.fload(F{10}, R{12}, 0);
      f.fadd(F{9}, F{9}, F{10});
      f.add(R{12}, R{11}, R{13});
      f.fstore(R{12}, 0, F{9});
    });
    f.ret();
  }
  {
    auto& main_fn = prog.begin_function("main");
    main_fn.count_loop_imm(R{28}, 0, iterations, [&] {
      main_fn.call("stream_copy");
      main_fn.call("stream_scale");
      main_fn.call("stream_add");
      main_fn.call("stream_triad");
    });
    main_fn.halt();
  }
  art.program = prog.build("main");
  return art;
}

// ---- matmul -----------------------------------------------------------------

namespace {

double matmul_a(std::uint32_t n, std::uint32_t i, std::uint32_t j) {
  (void)n;
  return static_cast<double>(static_cast<std::int64_t>((i * 3 + j * 5) % 11) - 5);
}
double matmul_b(std::uint32_t n, std::uint32_t i, std::uint32_t j) {
  (void)n;
  return static_cast<double>(static_cast<std::int64_t>((i * 7 + j * 2) % 13) - 6);
}

}  // namespace

std::vector<double> matmul_reference(std::uint32_t n) {
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::uint32_t k = 0; k < n; ++k) {
        acc += matmul_a(n, i, k) * matmul_b(n, k, j);
      }
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
  return c;
}

MatmulArtifacts build_matmul(std::uint32_t n, bool tiled, std::uint32_t tile) {
  TQUAD_CHECK(n >= 2, "matrix too small");
  if (tiled) {
    TQUAD_CHECK(tile >= 2 && n % tile == 0, "n must be a multiple of the tile");
  }
  MatmulArtifacts art;
  art.n = n;
  art.tiled = tiled;
  ProgramBuilder prog;
  const std::int64_t bytes = static_cast<std::int64_t>(n) * n * 8;
  art.a_addr = prog.alloc_global("A", bytes, 64);
  art.b_addr = prog.alloc_global("B", bytes, 64);
  art.c_addr = prog.alloc_global("C", bytes, 64);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(a.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i) * n + j] = matmul_a(n, i, j);
      b[static_cast<std::size_t>(i) * n + j] = matmul_b(n, i, j);
    }
  }
  prog.init_data(art.a_addr, f64_bytes(a));
  prog.init_data(art.b_addr, f64_bytes(b));

  const std::int64_t N = n;
  const std::int64_t T = tile;
  auto elem_addr = [&](FunctionBuilder& f, R dst, std::int64_t base, R row, R col) {
    // dst = base + 8 * (row * N + col)
    f.muli(dst, row, N);
    f.add(dst, dst, col);
    f.shli(dst, dst, 3);
    f.addi(dst, dst, base);
  };

  if (!tiled) {
    auto& f = prog.begin_function("matmul_naive");
    f.count_loop_imm(R{8}, 0, N, [&] {      // i
      f.count_loop_imm(R{9}, 0, N, [&] {    // j
        f.fmovi(F{1}, 0.0);
        f.count_loop_imm(R{10}, 0, N, [&] {  // k
          elem_addr(f, R{2}, static_cast<std::int64_t>(art.a_addr), R{8}, R{10});
          f.fload(F{2}, R{2}, 0);
          elem_addr(f, R{3}, static_cast<std::int64_t>(art.b_addr), R{10}, R{9});
          f.fload(F{3}, R{3}, 0);
          f.fmul(F{2}, F{2}, F{3});
          f.fadd(F{1}, F{1}, F{2});
        });
        elem_addr(f, R{2}, static_cast<std::int64_t>(art.c_addr), R{8}, R{9});
        f.fstore(R{2}, 0, F{1});
      });
    });
    f.ret();
  } else {
    auto& f = prog.begin_function("matmul_tiled");
    // Tile loops step by T; written with manual labels since count_loop
    // increments by one.
    auto step_loop = [&](R counter, const std::function<void()>& body) {
      f.movi(counter, 0);
      const auto head = f.new_label();
      const auto done = f.new_label();
      f.bind(head);
      f.sltsi(R{0}, counter, N);
      f.brz(R{0}, done);
      body();
      f.addi(counter, counter, T);
      f.jmp(head);
      f.bind(done);
    };
    step_loop(R{16}, [&] {          // ii
      step_loop(R{17}, [&] {        // jj
        step_loop(R{18}, [&] {      // kk
          // for i in ii..ii+T, j in jj..jj+T:
          //   acc = C[i][j]; for k in kk..kk+T: acc += A[i][k]*B[k][j]
          f.mov(R{8}, R{16});
          f.count_loop_imm(R{11}, 0, T, [&] {  // i offset
            f.mov(R{9}, R{17});
            f.count_loop_imm(R{12}, 0, T, [&] {  // j offset
              elem_addr(f, R{4}, static_cast<std::int64_t>(art.c_addr), R{8}, R{9});
              f.fload(F{1}, R{4}, 0);
              f.mov(R{10}, R{18});
              f.count_loop_imm(R{13}, 0, T, [&] {  // k offset
                elem_addr(f, R{2}, static_cast<std::int64_t>(art.a_addr), R{8},
                          R{10});
                f.fload(F{2}, R{2}, 0);
                elem_addr(f, R{3}, static_cast<std::int64_t>(art.b_addr), R{10},
                          R{9});
                f.fload(F{3}, R{3}, 0);
                f.fmul(F{2}, F{2}, F{3});
                f.fadd(F{1}, F{1}, F{2});
                f.addi(R{10}, R{10}, 1);
              });
              elem_addr(f, R{4}, static_cast<std::int64_t>(art.c_addr), R{8}, R{9});
              f.fstore(R{4}, 0, F{1});
              f.addi(R{9}, R{9}, 1);
            });
            f.addi(R{8}, R{8}, 1);
          });
        });
      });
    });
    f.ret();
  }
  {
    auto& main_fn = prog.begin_function("main");
    main_fn.call(tiled ? "matmul_tiled" : "matmul_naive");
    main_fn.halt();
  }
  art.program = prog.build("main");
  return art;
}

// ---- pointer chase -------------------------------------------------------------

ChaseArtifacts build_chase(std::uint32_t nodes, std::uint64_t hops,
                           std::uint64_t seed) {
  TQUAD_CHECK(nodes >= 2, "need at least two nodes");
  ChaseArtifacts art;
  art.nodes = nodes;
  art.hops = hops;
  ProgramBuilder prog;
  art.nodes_addr = prog.alloc_global("nodes", static_cast<std::int64_t>(nodes) * 8, 64);

  // Build a single-cycle permutation with a Sattolo shuffle.
  std::vector<std::uint32_t> order(nodes);
  std::iota(order.begin(), order.end(), 0);
  SplitMix64 rng(seed);
  for (std::uint32_t i = nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i));
    std::swap(order[i], order[j]);
  }
  std::vector<std::uint64_t> next(nodes);
  for (std::uint32_t i = 0; i + 1 < nodes; ++i) {
    next[order[i]] = art.nodes_addr + 8ull * order[i + 1];
  }
  next[order[nodes - 1]] = art.nodes_addr + 8ull * order[0];
  prog.init_data(art.nodes_addr, u64_bytes(next));

  // Host-side walk for the expected final node.
  std::uint64_t cursor = art.nodes_addr;
  for (std::uint64_t h = 0; h < hops; ++h) {
    cursor = next[(cursor - art.nodes_addr) / 8];
  }
  art.expected_final = (cursor - art.nodes_addr) / 8;

  {
    auto& f = prog.begin_function("chase");
    f.movi(R{1}, static_cast<std::int64_t>(art.nodes_addr));
    f.movi(R{8}, static_cast<std::int64_t>(hops));
    const auto head = f.new_label();
    const auto done = f.new_label();
    f.bind(head);
    f.brz(R{8}, done);
    f.load(R{1}, R{1}, 0, 8);
    f.addi(R{8}, R{8}, -1);
    f.jmp(head);
    f.bind(done);
    f.ret();
  }
  {
    auto& main_fn = prog.begin_function("main");
    main_fn.call("chase");
    main_fn.halt();
  }
  art.program = prog.build("main");
  return art;
}

// ---- histogram --------------------------------------------------------------------

HistogramArtifacts build_histogram(std::uint32_t buckets, std::uint64_t samples,
                                   std::uint64_t seed) {
  TQUAD_CHECK((buckets & (buckets - 1)) == 0, "buckets must be a power of two");
  TQUAD_CHECK(seed != 0, "xorshift seed must be nonzero");
  HistogramArtifacts art;
  art.buckets = buckets;
  art.samples = samples;
  ProgramBuilder prog;
  art.buckets_addr =
      prog.alloc_global("buckets", static_cast<std::int64_t>(buckets) * 8, 64);

  // Host-side reference with the same xorshift64.
  art.expected.assign(buckets, 0);
  std::uint64_t x = seed;
  for (std::uint64_t s = 0; s < samples; ++s) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    ++art.expected[x & (buckets - 1)];
  }

  {
    auto& f = prog.begin_function("histogram");
    f.movi(R{8}, static_cast<std::int64_t>(art.buckets_addr));
    f.movi(R{9}, static_cast<std::int64_t>(seed));  // x
    f.movi(R{10}, static_cast<std::int64_t>(samples));
    const auto head = f.new_label();
    const auto done = f.new_label();
    f.bind(head);
    f.brz(R{10}, done);
    f.shli(R{11}, R{9}, 13);
    f.xor_(R{9}, R{9}, R{11});
    f.shrli(R{11}, R{9}, 7);
    f.xor_(R{9}, R{9}, R{11});
    f.shli(R{11}, R{9}, 17);
    f.xor_(R{9}, R{9}, R{11});
    f.andi(R{11}, R{9}, static_cast<std::int64_t>(buckets) - 1);
    f.shli(R{11}, R{11}, 3);
    f.add(R{11}, R{11}, R{8});
    f.load(R{12}, R{11}, 0, 8);
    f.addi(R{12}, R{12}, 1);
    f.store(R{11}, 0, R{12}, 8);
    f.addi(R{10}, R{10}, -1);
    f.jmp(head);
    f.bind(done);
    f.ret();
  }
  {
    auto& main_fn = prog.begin_function("main");
    main_fn.call("histogram");
    main_fn.halt();
  }
  art.program = prog.build("main");
  return art;
}

// ---- hash join --------------------------------------------------------------------

namespace {

// Fibonacci-hash multiplier; the guest multiply wraps mod 2^64 exactly like
// host std::uint64_t arithmetic, so host and guest hash identically.
constexpr std::uint64_t kHashMul = 0x9E3779B97F4A7C15ull;

std::uint64_t hj_hash(std::uint64_t key, std::uint32_t mask) {
  return ((key * kHashMul) >> 29) & mask;
}

}  // namespace

HashJoinArtifacts build_hashjoin(std::uint32_t build_rows, std::uint32_t probe_rows,
                                 std::uint64_t seed) {
  TQUAD_CHECK(build_rows >= 1, "need at least one build row");
  TQUAD_CHECK(probe_rows >= 1, "need at least one probe row");
  HashJoinArtifacts art;
  art.build_rows = build_rows;
  art.probe_rows = probe_rows;
  std::uint32_t slots = 8;
  while (slots < 2 * build_rows) slots <<= 1;
  art.slots = slots;
  const std::uint32_t mask = slots - 1;

  // Deterministic relations: keys are forced odd (nonzero — zero is the
  // empty-slot sentinel), about half of the probe keys are drawn from the
  // build side so both hit and miss paths execute.
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> build_keys(build_rows);
  std::vector<std::uint64_t> build_vals(build_rows);
  for (std::uint32_t i = 0; i < build_rows; ++i) {
    build_keys[i] = rng.next() | 1;
    build_vals[i] = rng.next();
  }
  std::vector<std::uint64_t> probe_keys(probe_rows);
  for (std::uint32_t i = 0; i < probe_rows; ++i) {
    probe_keys[i] = (rng.next() & 1)
                        ? build_keys[rng.next_below(build_rows)]
                        : (rng.next() | 1);
  }

  // Host golden model: the same linear-probing insert and lookup order the
  // guest executes. The table is at most half full, so probes always stop.
  std::vector<std::uint64_t> table_key(slots, 0);
  std::vector<std::uint64_t> table_val(slots, 0);
  for (std::uint32_t i = 0; i < build_rows; ++i) {
    std::uint64_t h = hj_hash(build_keys[i], mask);
    while (table_key[h] != 0) h = (h + 1) & mask;
    table_key[h] = build_keys[i];
    table_val[h] = build_vals[i];
  }
  for (std::uint32_t i = 0; i < probe_rows; ++i) {
    std::uint64_t h = hj_hash(probe_keys[i], mask);
    while (table_key[h] != 0) {
      if (table_key[h] == probe_keys[i]) {
        art.expected_sum += table_val[h];
        ++art.expected_matches;
        break;
      }
      h = (h + 1) & mask;
    }
  }

  ProgramBuilder prog;
  art.build_keys_addr =
      prog.alloc_global("build_keys", static_cast<std::uint64_t>(build_rows) * 8, 64);
  art.build_vals_addr =
      prog.alloc_global("build_vals", static_cast<std::uint64_t>(build_rows) * 8, 64);
  art.probe_keys_addr =
      prog.alloc_global("probe_keys", static_cast<std::uint64_t>(probe_rows) * 8, 64);
  art.table_addr =
      prog.alloc_global("table", static_cast<std::uint64_t>(slots) * 16, 64);
  art.result_addr = prog.alloc_global("result", 16, 64);
  prog.init_data(art.build_keys_addr, u64_bytes(build_keys));
  prog.init_data(art.build_vals_addr, u64_bytes(build_vals));
  prog.init_data(art.probe_keys_addr, u64_bytes(probe_keys));

  // r3 = hash(r1): wrapping multiply, top bits, masked to the table.
  auto emit_hash = [&](FunctionBuilder& f) {
    f.mul(R{3}, R{1}, R{15});
    f.shrli(R{3}, R{3}, 29);
    f.and_(R{3}, R{3}, R{14});
  };

  // build: stream the relation, scatter (key, payload) into the table.
  {
    auto& f = prog.begin_function("hj_build");
    f.movi(R{8}, static_cast<std::int64_t>(art.build_keys_addr));
    f.movi(R{9}, static_cast<std::int64_t>(art.build_vals_addr));
    f.movi(R{13}, static_cast<std::int64_t>(art.table_addr));
    f.movi(R{14}, static_cast<std::int64_t>(mask));
    f.movi(R{15}, static_cast<std::int64_t>(kHashMul));
    f.count_loop_imm(R{20}, 0, build_rows, [&] {
      f.shli(R{10}, R{20}, 3);
      f.add(R{11}, R{10}, R{8});
      f.load(R{1}, R{11}, 0, 8);  // key
      f.add(R{11}, R{10}, R{9});
      f.load(R{2}, R{11}, 0, 8);  // payload
      emit_hash(f);
      const auto head = f.new_label();
      const auto insert = f.new_label();
      f.bind(head);
      f.shli(R{4}, R{3}, 4);
      f.add(R{4}, R{4}, R{13});  // slot address
      f.load(R{5}, R{4}, 0, 8);  // slot key
      f.brz(R{5}, insert);
      f.addi(R{3}, R{3}, 1);
      f.and_(R{3}, R{3}, R{14});
      f.jmp(head);
      f.bind(insert);
      f.store(R{4}, 0, R{1}, 8);
      f.store(R{4}, 8, R{2}, 8);
    });
    f.ret();
  }
  // probe: stream the keys, chase table slots, accumulate matched payloads.
  {
    auto& f = prog.begin_function("hj_probe");
    f.movi(R{8}, static_cast<std::int64_t>(art.probe_keys_addr));
    f.movi(R{13}, static_cast<std::int64_t>(art.table_addr));
    f.movi(R{14}, static_cast<std::int64_t>(mask));
    f.movi(R{15}, static_cast<std::int64_t>(kHashMul));
    f.movi(R{16}, 0);  // payload sum
    f.movi(R{17}, 0);  // match count
    f.count_loop_imm(R{20}, 0, probe_rows, [&] {
      f.shli(R{10}, R{20}, 3);
      f.add(R{11}, R{10}, R{8});
      f.load(R{1}, R{11}, 0, 8);  // probe key
      emit_hash(f);
      const auto head = f.new_label();
      const auto hit = f.new_label();
      const auto next = f.new_label();
      f.bind(head);
      f.shli(R{4}, R{3}, 4);
      f.add(R{4}, R{4}, R{13});
      f.load(R{5}, R{4}, 0, 8);
      f.brz(R{5}, next);  // empty slot: miss
      f.seq(R{6}, R{5}, R{1});
      f.brnz(R{6}, hit);
      f.addi(R{3}, R{3}, 1);
      f.and_(R{3}, R{3}, R{14});
      f.jmp(head);
      f.bind(hit);
      f.load(R{7}, R{4}, 8, 8);
      f.add(R{16}, R{16}, R{7});
      f.addi(R{17}, R{17}, 1);
      f.bind(next);
    });
    f.movi(R{4}, static_cast<std::int64_t>(art.result_addr));
    f.store(R{4}, 0, R{16}, 8);
    f.store(R{4}, 8, R{17}, 8);
    f.ret();
  }
  {
    auto& main_fn = prog.begin_function("main");
    main_fn.call("hj_build");
    main_fn.call("hj_probe");
    main_fn.halt();
  }
  art.program = prog.build("main");
  return art;
}

// ---- multi-phase pipeline ---------------------------------------------------------

PhasedArtifacts build_phased(std::uint32_t elements, std::uint32_t reps,
                             std::uint64_t seed) {
  TQUAD_CHECK(elements >= 2 && (elements & (elements - 1)) == 0,
              "elements must be a power of two >= 2");
  TQUAD_CHECK(reps >= 1, "need at least one pass per phase");
  TQUAD_CHECK(seed != 0, "xorshift seed must be nonzero");
  PhasedArtifacts art;
  art.elements = elements;
  art.reps = reps;
  art.seed = seed;
  const std::uint32_t n = elements;
  const std::uint64_t mask = n - 1;

  // Host golden model, phase by phase in program order (u64 wrap throughout,
  // mirroring the guest ALU).
  auto& a = art.expected[0];
  auto& b = art.expected[1];
  auto& c = art.expected[2];
  auto& d = art.expected[3];
  for (auto& buf : art.expected) buf.assign(n, 0);
  for (std::uint32_t r = 0; r < reps; ++r) {
    for (std::uint32_t i = 0; i < n; ++i) {
      a[i] = a[i] * 5 + std::uint64_t{i} * 3 + r + 1;
    }
  }
  for (std::uint32_t r = 0; r < reps; ++r) {
    for (std::uint32_t i = 0; i < n; ++i) {
      b[i] += a[i] * 3 + r;
    }
  }
  for (std::uint32_t r = 0; r < reps; ++r) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t j = n - 1 - i;
      c[j] += b[j] * 7 + i;
    }
  }
  std::uint64_t x = seed;
  for (std::uint32_t r = 0; r < reps; ++r) {
    for (std::uint32_t i = 0; i < n; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const std::uint64_t g = x & mask;
      const std::uint64_t s = (x >> 17) & mask;
      d[g] += c[s] + (x | 1);
    }
  }

  ProgramBuilder prog;
  static const char* kBufferNames[PhasedArtifacts::kPhases] = {"pa", "pb", "pc",
                                                               "pd"};
  for (std::uint32_t p = 0; p < PhasedArtifacts::kPhases; ++p) {
    art.buffer_addr[p] =
        prog.alloc_global(kBufferNames[p], static_cast<std::uint64_t>(n) * 8, 64);
  }

  // r10 = &buf[index], for buf base held in `base`.
  auto elem = [&](FunctionBuilder& f, R index, R base) {
    f.shli(R{10}, index, 3);
    f.add(R{10}, R{10}, base);
  };

  // phase_fill: A[i] = A[i]*5 + i*3 + r + 1, forward sequential RMW.
  {
    auto& f = prog.begin_function("phase_fill");
    f.movi(R{8}, static_cast<std::int64_t>(art.buffer_addr[0]));
    f.count_loop_imm(R{20}, 0, reps, [&] {
      f.count_loop_imm(R{21}, 0, n, [&] {
        elem(f, R{21}, R{8});
        f.load(R{11}, R{10}, 0, 8);
        f.muli(R{11}, R{11}, 5);
        f.muli(R{12}, R{21}, 3);
        f.add(R{11}, R{11}, R{12});
        f.add(R{11}, R{11}, R{20});
        f.addi(R{11}, R{11}, 1);
        f.store(R{10}, 0, R{11}, 8);
      });
    });
    f.ret();
  }
  // phase_scan: B[i] += A[i]*3 + r, forward read of A, RMW of B.
  {
    auto& f = prog.begin_function("phase_scan");
    f.movi(R{8}, static_cast<std::int64_t>(art.buffer_addr[0]));
    f.movi(R{9}, static_cast<std::int64_t>(art.buffer_addr[1]));
    f.count_loop_imm(R{20}, 0, reps, [&] {
      f.count_loop_imm(R{21}, 0, n, [&] {
        elem(f, R{21}, R{8});
        f.load(R{11}, R{10}, 0, 8);
        f.muli(R{11}, R{11}, 3);
        f.add(R{11}, R{11}, R{20});
        elem(f, R{21}, R{9});
        f.load(R{12}, R{10}, 0, 8);
        f.add(R{12}, R{12}, R{11});
        f.store(R{10}, 0, R{12}, 8);
      });
    });
    f.ret();
  }
  // phase_reverse: C[j] += B[j]*7 + i with j = n-1-i, backward traversal.
  {
    auto& f = prog.begin_function("phase_reverse");
    f.movi(R{8}, static_cast<std::int64_t>(art.buffer_addr[1]));
    f.movi(R{9}, static_cast<std::int64_t>(art.buffer_addr[2]));
    f.count_loop_imm(R{20}, 0, reps, [&] {
      f.count_loop_imm(R{21}, 0, n, [&] {
        f.movi(R{13}, static_cast<std::int64_t>(n) - 1);
        f.sub(R{13}, R{13}, R{21});  // j
        elem(f, R{13}, R{8});
        f.load(R{11}, R{10}, 0, 8);
        f.muli(R{11}, R{11}, 7);
        f.add(R{11}, R{11}, R{21});
        elem(f, R{13}, R{9});
        f.load(R{12}, R{10}, 0, 8);
        f.add(R{12}, R{12}, R{11});
        f.store(R{10}, 0, R{12}, 8);
      });
    });
    f.ret();
  }
  // phase_gather: xorshift-chaotic gather from C, scatter-accumulate into D.
  {
    auto& f = prog.begin_function("phase_gather");
    f.movi(R{8}, static_cast<std::int64_t>(art.buffer_addr[2]));
    f.movi(R{9}, static_cast<std::int64_t>(art.buffer_addr[3]));
    f.movi(R{13}, static_cast<std::int64_t>(mask));
    f.movi(R{14}, static_cast<std::int64_t>(seed));  // x
    f.count_loop_imm(R{20}, 0, reps, [&] {
      f.count_loop_imm(R{21}, 0, n, [&] {
        f.shli(R{11}, R{14}, 13);
        f.xor_(R{14}, R{14}, R{11});
        f.shrli(R{11}, R{14}, 7);
        f.xor_(R{14}, R{14}, R{11});
        f.shli(R{11}, R{14}, 17);
        f.xor_(R{14}, R{14}, R{11});
        f.shrli(R{11}, R{14}, 17);
        f.and_(R{11}, R{11}, R{13});  // s
        elem(f, R{11}, R{8});
        f.load(R{12}, R{10}, 0, 8);   // C[s]
        f.and_(R{11}, R{14}, R{13});  // g
        elem(f, R{11}, R{9});
        f.load(R{15}, R{10}, 0, 8);   // D[g]
        f.add(R{15}, R{15}, R{12});
        f.ori(R{16}, R{14}, 1);
        f.add(R{15}, R{15}, R{16});
        f.store(R{10}, 0, R{15}, 8);
      });
    });
    f.ret();
  }
  {
    auto& main_fn = prog.begin_function("main");
    main_fn.call("phase_fill");
    main_fn.call("phase_scan");
    main_fn.call("phase_reverse");
    main_fn.call("phase_gather");
    main_fn.halt();
  }
  art.program = prog.build("main");
  return art;
}

}  // namespace tq::workloads
