#include "workloads/registry.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "wfs/runner.hpp"
#include "workloads/workloads.hpp"

namespace tq::workloads {

namespace {

std::string mismatch(const std::string& what, std::uint64_t index,
                     std::uint64_t got, std::uint64_t want) {
  return what + "[" + std::to_string(index) + "]: got " + std::to_string(got) +
         ", want " + std::to_string(want);
}

std::string check_u64_buffer(vm::Machine& machine, const std::string& what,
                             std::uint64_t addr,
                             const std::vector<std::uint64_t>& want) {
  for (std::uint64_t i = 0; i < want.size(); ++i) {
    const std::uint64_t got = machine.memory().load(addr + 8 * i, 8);
    if (got != want[i]) return mismatch(what, i, got, want[i]);
  }
  return {};
}

// ---- per-workload instance builders ----------------------------------------

Instance make_stream(std::uint32_t elements, std::uint32_t iterations) {
  StreamArtifacts art = build_stream(elements, iterations);
  Instance inst;
  inst.program = std::move(art.program);
  const std::uint64_t a_addr = art.a_addr;
  const std::uint64_t b_addr = art.b_addr;
  const std::uint64_t c_addr = art.c_addr;
  const double scalar = art.scalar;
  inst.verify = [=](const Instance&, vm::Machine& machine) -> std::string {
    // Host reference: the four STREAM kernels applied `iterations` times.
    std::vector<double> a(elements, 2.0), b(elements, 0.5), c(elements, 0.0);
    for (std::uint32_t iter = 0; iter < iterations; ++iter) {
      c = a;
      for (std::uint32_t i = 0; i < elements; ++i) b[i] = scalar * c[i];
      for (std::uint32_t i = 0; i < elements; ++i) c[i] = a[i] + b[i];
      for (std::uint32_t i = 0; i < elements; ++i) a[i] = b[i] + scalar * c[i];
    }
    const struct {
      const char* what;
      std::uint64_t addr;
      const std::vector<double>* want;
    } buffers[] = {{"a", a_addr, &a}, {"b", b_addr, &b}, {"c", c_addr, &c}};
    for (const auto& buf : buffers) {
      for (std::uint32_t i = 0; i < elements; ++i) {
        const double got = machine.memory().load_f64(buf.addr + 8 * i);
        if (got != (*buf.want)[i]) {
          return std::string(buf.what) + "[" + std::to_string(i) + "]: got " +
                 std::to_string(got) + ", want " + std::to_string((*buf.want)[i]);
        }
      }
    }
    return {};
  };
  return inst;
}

Instance make_matmul(std::uint32_t n, bool tiled, std::uint32_t tile) {
  MatmulArtifacts art = build_matmul(n, tiled, tile);
  Instance inst;
  inst.program = std::move(art.program);
  const std::uint64_t c_addr = art.c_addr;
  inst.verify = [=](const Instance&, vm::Machine& machine) -> std::string {
    const std::vector<double> want = matmul_reference(n);
    for (std::uint32_t i = 0; i < n * n; ++i) {
      const double got = machine.memory().load_f64(c_addr + 8 * i);
      if (got != want[i]) {
        return "C[" + std::to_string(i) + "]: got " + std::to_string(got) +
               ", want " + std::to_string(want[i]);
      }
    }
    return {};
  };
  return inst;
}

Instance make_chase(std::uint32_t nodes, std::uint64_t hops) {
  ChaseArtifacts art = build_chase(nodes, hops);
  Instance inst;
  inst.program = std::move(art.program);
  const std::uint64_t nodes_addr = art.nodes_addr;
  const std::uint64_t expected_final = art.expected_final;
  inst.verify = [=](const Instance&, vm::Machine& machine) -> std::string {
    const std::uint64_t final_node =
        (machine.cpu().regs[1] - nodes_addr) / 8;
    if (final_node != expected_final) {
      return mismatch("final node", 0, final_node, expected_final);
    }
    return {};
  };
  return inst;
}

Instance make_histogram(std::uint32_t buckets, std::uint64_t samples) {
  HistogramArtifacts art = build_histogram(buckets, samples);
  Instance inst;
  inst.program = std::move(art.program);
  const std::uint64_t buckets_addr = art.buckets_addr;
  inst.verify = [addr = buckets_addr, want = std::move(art.expected)](
                    const Instance&, vm::Machine& machine) -> std::string {
    return check_u64_buffer(machine, "bucket", addr, want);
  };
  return inst;
}

Instance make_hashjoin(std::uint32_t build_rows, std::uint32_t probe_rows) {
  HashJoinArtifacts art = build_hashjoin(build_rows, probe_rows);
  Instance inst;
  inst.program = std::move(art.program);
  const std::uint64_t result_addr = art.result_addr;
  const std::uint64_t expected_sum = art.expected_sum;
  const std::uint64_t expected_matches = art.expected_matches;
  inst.verify = [=](const Instance&, vm::Machine& machine) -> std::string {
    const std::uint64_t sum = machine.memory().load(result_addr, 8);
    const std::uint64_t matches = machine.memory().load(result_addr + 8, 8);
    if (sum != expected_sum) return mismatch("payload sum", 0, sum, expected_sum);
    if (matches != expected_matches) {
      return mismatch("match count", 0, matches, expected_matches);
    }
    return {};
  };
  return inst;
}

Instance make_phased(std::uint32_t elements, std::uint32_t reps) {
  PhasedArtifacts art = build_phased(elements, reps);
  Instance inst;
  inst.program = std::move(art.program);
  static const char* kNames[PhasedArtifacts::kPhases] = {"A", "B", "C", "D"};
  struct Captured {
    std::uint64_t addr[PhasedArtifacts::kPhases];
    std::vector<std::uint64_t> want[PhasedArtifacts::kPhases];
  };
  auto cap = std::make_shared<Captured>();
  for (std::uint32_t p = 0; p < PhasedArtifacts::kPhases; ++p) {
    cap->addr[p] = art.buffer_addr[p];
    cap->want[p] = std::move(art.expected[p]);
  }
  inst.verify = [cap](const Instance&, vm::Machine& machine) -> std::string {
    for (std::uint32_t p = 0; p < PhasedArtifacts::kPhases; ++p) {
      std::string err =
          check_u64_buffer(machine, kNames[p], cap->addr[p], cap->want[p]);
      if (!err.empty()) return err;
    }
    return {};
  };
  return inst;
}

Instance make_wfs() {
  wfs::WfsRun run = wfs::prepare_wfs_run(wfs::WfsConfig::tiny());
  Instance inst;
  inst.program = run.artifacts.program;
  inst.host = std::move(run.host);
  inst.input = wfs::wav_encode(run.input);
  inst.verify = [cfg = run.config, input = run.input](
                    const Instance& self, vm::Machine&) -> std::string {
    const wfs::GoldenResult golden = wfs::run_golden(cfg, input);
    const wfs::WavData out =
        wfs::wav_decode(self.host.output(wfs::WfsArtifacts::kOutputFd));
    if (out.samples.size() != golden.output.size()) {
      return mismatch("output size", 0, out.samples.size(),
                      golden.output.size());
    }
    // The guest mirrors the golden arithmetic operation for operation;
    // allow one LSB of PCM16 quantisation wobble.
    for (std::size_t i = 0; i < out.samples.size(); ++i) {
      if (std::abs(int(out.samples[i]) - int(golden.output[i])) > 1) {
        return mismatch("sample", i,
                        static_cast<std::uint64_t>(out.samples[i]),
                        static_cast<std::uint64_t>(golden.output[i]));
      }
    }
    return {};
  };
  return inst;
}

std::vector<Entry> make_registry() {
  std::vector<Entry> zoo;
  zoo.push_back({"stream", Shape::kStreaming, 0,
                 [] { return make_stream(128, 2); },
                 [] { return make_stream(4096, 4); }});
  zoo.push_back({"matmul_naive", Shape::kStrided, 0,
                 [] { return make_matmul(10, false, 8); },
                 [] { return make_matmul(48, false, 8); }});
  zoo.push_back({"matmul_tiled", Shape::kStrided, 0,
                 [] { return make_matmul(12, true, 4); },
                 [] { return make_matmul(48, true, 8); }});
  zoo.push_back({"chase", Shape::kChaotic, 0,
                 [] { return make_chase(64, 2000); },
                 [] { return make_chase(4096, 100'000); }});
  zoo.push_back({"histogram", Shape::kChaotic, 0,
                 [] { return make_histogram(32, 800); },
                 [] { return make_histogram(1024, 100'000); }});
  zoo.push_back({"hashjoin", Shape::kMixed, 0,
                 [] { return make_hashjoin(96, 128); },
                 [] { return make_hashjoin(4096, 8192); }});
  zoo.push_back({"phased", Shape::kPhaseSharp, PhasedArtifacts::kPhases,
                 [] { return make_phased(64, 2); },
                 [] { return make_phased(1024, 8); }});
  zoo.push_back({"wfs", Shape::kMixed, 0, make_wfs, make_wfs});
  return zoo;
}

}  // namespace

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kStreaming: return "streaming";
    case Shape::kStrided: return "strided";
    case Shape::kChaotic: return "chaotic";
    case Shape::kMixed: return "mixed";
    case Shape::kPhaseSharp: return "phase-sharp";
  }
  return "unknown";
}

const std::vector<Entry>& registry() {
  static const std::vector<Entry> zoo = make_registry();
  return zoo;
}

const Entry& find_workload(const std::string& name) {
  for (const Entry& entry : registry()) {
    if (entry.name == name) return entry;
  }
  TQUAD_THROW("unknown workload '" + name + "' (try: stream, matmul_naive, "
              "matmul_tiled, chase, histogram, hashjoin, phased, wfs)");
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const Entry& entry : registry()) names.push_back(entry.name);
  return names;
}

}  // namespace tq::workloads
