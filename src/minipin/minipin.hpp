// minipin: a Pin-style dynamic binary instrumentation API over the tq VM.
//
// The tQUAD paper implements its tools as pintools: the tool registers
// *instrumentation* routines that Pin invokes when code is first translated
// into the code cache, and those routines attach *analysis* calls that fire
// on every subsequent execution of the instrumented instruction
// (Section IV; Figures 3-5). minipin reproduces that model:
//
//   * `Engine::add_ins_instrument_function`  ~ INS_AddInstrumentFunction
//   * `Engine::add_rtn_instrument_function`  ~ RTN_AddInstrumentFunction
//   * `Ins::insert_predicated_call`          ~ INS_InsertPredicatedCall
//   * `Ins::insert_call`                     ~ INS_InsertCall
//   * `Rtn::insert_entry_call`               ~ RTN_InsertCall(IPOINT_BEFORE)
//   * `Engine::add_fini_function`            ~ PIN_AddFiniFunction
//
// A routine is instrumented lazily on its first dynamic entry — the analogue
// of Pin's JIT populating the code cache — so tools observe the same
// instrument-once / analyse-many lifecycle as on real Pin.
//
// Analysis callbacks receive an InsArgs bundle covering the IARG_* values
// tQUAD uses: instruction pointer, effective address, access size, prefetch
// flag, the stack-pointer value, and the retired-instruction count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "vm/compiled.hpp"
#include "vm/engine.hpp"
#include "vm/host_env.hpp"
#include "vm/machine.hpp"
#include "vm/probe.hpp"
#include "vm/program.hpp"

namespace tq::pin {

/// Argument bundle delivered to instruction-level analysis routines.
/// Read and write operands are separate because string moves (kMovs), like
/// x86 `movs`, read one location and write another in a single instruction;
/// loads/stores populate only one side. An alias of the VM-level seam type
/// so the same analysis routines run unchanged under either engine.
using InsArgs = vm::ProbeArgs;

/// Argument bundle delivered to routine-entry analysis calls.
using RtnArgs = vm::EntryArgs;

/// Analysis routines are plain functions with a tool pointer, mirroring the
/// AFUNPTR + IARG_PTR idiom of pintools (no std::function in the hot path).
using InsAnalysisFn = vm::ProbeFn;
using RtnAnalysisFn = vm::EntryFn;

class Engine;

/// Instrumentation-time view of one instruction, passed to INS instrument
/// callbacks exactly once per static instruction.
class Ins {
 public:
  isa::Op opcode() const noexcept { return instr_->op; }
  bool is_memory_read() const noexcept { return isa::is_memory_read(instr_->op); }
  bool is_memory_write() const noexcept { return isa::is_memory_write(instr_->op); }
  bool is_prefetch() const noexcept { return isa::is_prefetch(instr_->op); }
  bool references_memory() const noexcept { return isa::references_memory(instr_->op); }
  bool is_call() const noexcept { return isa::is_call(instr_->op); }
  bool is_ret() const noexcept { return isa::is_ret(instr_->op); }
  bool is_predicated() const noexcept { return instr_->predicated(); }
  std::uint32_t memory_size() const noexcept;
  std::uint32_t func() const noexcept { return func_; }
  std::uint32_t pc() const noexcept { return pc_; }
  const isa::Instr& raw() const noexcept { return *instr_; }

  /// Attach an analysis call that fires on every execution, including
  /// predicated-off ones (Pin's INS_InsertCall).
  void insert_call(InsAnalysisFn fn, void* tool);

  /// Attach an analysis call that fires only when the instruction actually
  /// executes (Pin's INS_InsertPredicatedCall).
  void insert_predicated_call(InsAnalysisFn fn, void* tool);

 private:
  friend class Engine;
  Ins(Engine& engine, std::uint32_t func, std::uint32_t pc, const isa::Instr& instr)
      : engine_(engine), func_(func), pc_(pc), instr_(&instr) {}
  Engine& engine_;
  std::uint32_t func_;
  std::uint32_t pc_;
  const isa::Instr* instr_;
};

/// Instrumentation-time view of one routine.
class Rtn {
 public:
  const std::string& name() const noexcept;
  std::uint32_t id() const noexcept { return func_; }
  vm::ImageKind image() const noexcept;
  bool in_main_image() const noexcept { return image() == vm::ImageKind::kMain; }
  std::size_t instruction_count() const noexcept;

  /// Attach an analysis call fired on every dynamic entry of this routine.
  void insert_entry_call(RtnAnalysisFn fn, void* tool);

 private:
  friend class Engine;
  Rtn(Engine& engine, std::uint32_t func) : engine_(engine), func_(func) {}
  Engine& engine_;
  std::uint32_t func_;
};

/// The instrumentation engine: owns the guest engine, drives lazy
/// instrumentation and dispatches analysis calls. One Engine instruments
/// one run. With EngineKind::kInterp it listens to the interpreter's event
/// stream; with EngineKind::kCompiled it instead hands the compiled engine
/// its finalized subscription tables (vm::ProbeProvider), which are lowered
/// into the fused-op stream — the tool-visible callback sequence is
/// identical either way.
class Engine final : public vm::ExecListener, public vm::ProbeProvider {
 public:
  Engine(const vm::Program& program, vm::HostEnv& host,
         vm::EngineKind kind = vm::EngineKind::kInterp);

  /// Register tool callbacks (before run()).
  void add_ins_instrument_function(std::function<void(Ins&)> callback);
  void add_rtn_instrument_function(std::function<void(Rtn&)> callback);
  void add_fini_function(std::function<void(std::uint64_t retired)> callback);

  /// Execute the program under instrumentation. Guest traps and budget
  /// exhaustion come back as RunOutcome statuses (fini callbacks still
  /// fire); host/tool errors throw.
  vm::RunOutcome run();

  /// Stop the run gracefully once this many instructions retire
  /// (0 = unlimited).
  void set_instruction_budget(std::uint64_t budget) noexcept {
    guest().set_instruction_budget(budget);
  }

  /// Arm deterministic fault injection on the underlying engine.
  void set_fault_plan(const vm::FaultPlan& plan) noexcept {
    guest().set_fault_plan(plan);
  }

  const vm::Program& program() const noexcept { return program_; }
  vm::HostEnv& host() noexcept { return host_; }
  vm::EngineKind engine_kind() const noexcept { return kind_; }

  /// The engine-neutral guest handle (budgets, fault plans, post-run state).
  vm::GuestEngine& guest() noexcept {
    return interp_ ? static_cast<vm::GuestEngine&>(*interp_)
                   : static_cast<vm::GuestEngine&>(*compiled_);
  }

  /// The underlying interpreter; only valid with EngineKind::kInterp (used
  /// by tests that inspect guest memory after a run).
  vm::Machine& machine();

  /// Count of routines that have been instrumented so far (diagnostics).
  std::size_t instrumented_routines() const noexcept { return instrumented_count_; }

  // vm::ExecListener implementation (invoked by the interpreter).
  void on_program_start(const vm::Program& program) override;
  void on_rtn_enter(std::uint32_t func) override;
  void on_instr(const vm::InstrEvent& event) override;
  void on_program_end(std::uint64_t retired) override;

  // vm::ProbeProvider implementation (invoked by the compiled engine).
  RoutineProbes instrument(std::uint32_t func) override;
  void on_end(std::uint64_t retired) override;

 private:
  friend class Ins;
  friend class Rtn;

  using AnalysisCall = vm::InsProbe;
  using EntryCall = vm::EntryProbe;
  struct RoutineState {
    bool instrumented = false;
    std::vector<std::vector<AnalysisCall>> per_ins;  // indexed by pc
    std::vector<EntryCall> entry_calls;
  };

  void instrument_routine(std::uint32_t func);

  const vm::Program& program_;
  vm::HostEnv& host_;
  vm::EngineKind kind_;
  std::optional<vm::Machine> interp_;
  std::optional<vm::CompiledMachine> compiled_;
  std::vector<RoutineState> routines_;
  std::vector<std::function<void(Ins&)>> ins_callbacks_;
  std::vector<std::function<void(Rtn&)>> rtn_callbacks_;
  std::vector<std::function<void(std::uint64_t)>> fini_callbacks_;
  std::size_t instrumented_count_ = 0;
  std::uint64_t retired_now_ = 0;
  bool ran_ = false;
};

}  // namespace tq::pin
