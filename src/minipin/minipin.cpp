#include "minipin/minipin.hpp"

#include "support/check.hpp"

namespace tq::pin {

std::uint32_t Ins::memory_size() const noexcept {
  if (is_call() || is_ret()) return 8;  // implicit return-address push/pop
  return instr_->size;
}

void Ins::insert_call(InsAnalysisFn fn, void* tool) {
  TQUAD_CHECK(fn != nullptr, "null analysis function");
  engine_.routines_[func_].per_ins[pc_].push_back(
      Engine::AnalysisCall{fn, tool, /*predicated_only=*/false});
}

void Ins::insert_predicated_call(InsAnalysisFn fn, void* tool) {
  TQUAD_CHECK(fn != nullptr, "null analysis function");
  engine_.routines_[func_].per_ins[pc_].push_back(
      Engine::AnalysisCall{fn, tool, /*predicated_only=*/true});
}

const std::string& Rtn::name() const noexcept {
  return engine_.program_.functions()[func_].name;
}

vm::ImageKind Rtn::image() const noexcept {
  return engine_.program_.functions()[func_].image;
}

std::size_t Rtn::instruction_count() const noexcept {
  return engine_.program_.functions()[func_].code.size();
}

void Rtn::insert_entry_call(RtnAnalysisFn fn, void* tool) {
  TQUAD_CHECK(fn != nullptr, "null entry analysis function");
  engine_.routines_[func_].entry_calls.push_back(Engine::EntryCall{fn, tool});
}

Engine::Engine(const vm::Program& program, vm::HostEnv& host,
               vm::EngineKind kind)
    : program_(program), host_(host), kind_(kind) {
  if (kind_ == vm::EngineKind::kCompiled) {
    compiled_.emplace(program, host);
  } else {
    interp_.emplace(program, host);
  }
  routines_.resize(program_.functions().size());
}

vm::Machine& Engine::machine() {
  TQUAD_CHECK(interp_.has_value(),
              "Engine::machine() requires EngineKind::kInterp");
  return *interp_;
}

void Engine::add_ins_instrument_function(std::function<void(Ins&)> callback) {
  TQUAD_CHECK(static_cast<bool>(callback), "empty instrument callback");
  ins_callbacks_.push_back(std::move(callback));
}

void Engine::add_rtn_instrument_function(std::function<void(Rtn&)> callback) {
  TQUAD_CHECK(static_cast<bool>(callback), "empty instrument callback");
  rtn_callbacks_.push_back(std::move(callback));
}

void Engine::add_fini_function(std::function<void(std::uint64_t)> callback) {
  TQUAD_CHECK(static_cast<bool>(callback), "empty fini callback");
  fini_callbacks_.push_back(std::move(callback));
}

vm::RunOutcome Engine::run() {
  TQUAD_CHECK(!ran_, "Engine::run is single-shot; construct a fresh Engine");
  ran_ = true;
  if (compiled_) {
    return compiled_->run(static_cast<vm::ProbeProvider&>(*this));
  }
  return interp_->run(this);
}

Engine::RoutineProbes Engine::instrument(std::uint32_t func) {
  RoutineState& state = routines_[func];
  if (!state.instrumented) [[unlikely]] {
    instrument_routine(func);
  }
  return RoutineProbes{&state.per_ins, &state.entry_calls};
}

void Engine::on_end(std::uint64_t retired) { on_program_end(retired); }

void Engine::instrument_routine(std::uint32_t func) {
  RoutineState& state = routines_[func];
  state.instrumented = true;
  ++instrumented_count_;
  const vm::Function& fn = program_.functions()[func];
  state.per_ins.resize(fn.code.size());
  // Routine-level instrumentation first (tQUAD registers UpdateCallStack
  // here), then instruction-level (tQUAD's Instruction()); this matches the
  // registration order in the paper's Figure 3 pseudocode.
  for (const auto& callback : rtn_callbacks_) {
    Rtn rtn(*this, func);
    callback(rtn);
  }
  for (std::uint32_t pc = 0; pc < fn.code.size(); ++pc) {
    for (const auto& callback : ins_callbacks_) {
      Ins ins(*this, func, pc, fn.code[pc]);
      callback(ins);
    }
  }
}

void Engine::on_program_start(const vm::Program&) {}

void Engine::on_rtn_enter(std::uint32_t func) {
  RoutineState& state = routines_[func];
  if (!state.instrumented) [[unlikely]] {
    instrument_routine(func);
  }
  if (!state.entry_calls.empty()) {
    RtnArgs args;
    args.func = func;
    args.name = &program_.functions()[func].name;
    args.image = program_.functions()[func].image;
    args.retired = retired_now_;
    for (const EntryCall& call : state.entry_calls) {
      call.fn(call.tool, args);
    }
  }
}

void Engine::on_instr(const vm::InstrEvent& event) {
  retired_now_ = event.retired;
  const RoutineState& state = routines_[event.func];
  TQUAD_DCHECK(state.instrumented, "instruction executed before instrumentation");
  const auto& calls = state.per_ins[event.pc];
  if (calls.empty()) return;
  InsArgs args;
  args.ip = (static_cast<std::uint64_t>(event.func) << 32) | event.pc;
  args.func = event.func;
  args.pc = event.pc;
  args.read_ea = event.read.ea;
  args.read_size = event.read.size;
  args.write_ea = event.write.ea;
  args.write_size = event.write.size;
  args.is_prefetch = event.prefetch;
  args.executed = event.executed;
  args.sp = event.sp;
  args.retired = event.retired;
  for (const AnalysisCall& call : calls) {
    if (call.predicated_only && !event.executed) continue;
    call.fn(call.tool, args);
  }
}

void Engine::on_program_end(std::uint64_t retired) {
  for (const auto& callback : fini_callbacks_) callback(retired);
}

}  // namespace tq::pin
