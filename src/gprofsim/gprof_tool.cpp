#include "gprofsim/gprof_tool.hpp"

#include <algorithm>

namespace tq::gprof {

GprofTool::GprofTool(const vm::Program& program, Options options)
    : program_(program),
      options_(options),
      stack_(program, options.library_policy) {
  TQUAD_CHECK(options_.sample_period > 0, "sample period must be positive");
  const std::size_t n = program.functions().size();
  self_instrs_.assign(n, 0);
  samples_.assign(n, 0);
  calls_.assign(n, 0);
  inclusive_.assign(n, 0);
  activation_depth_.assign(n, 0);
  activation_start_.assign(n, 0);
  next_sample_ = options_.sample_period;
}

GprofTool::GprofTool(pin::Engine& engine, Options options)
    : GprofTool(engine.program(), options) {
  engine.add_rtn_instrument_function([this](pin::Rtn& rtn) { instrument_rtn(rtn); });
  engine.add_ins_instrument_function([this](pin::Ins& ins) { instrument_ins(ins); });
  engine.add_fini_function([this](std::uint64_t retired) { account_fini(retired); });
}

void GprofTool::instrument_rtn(pin::Rtn& rtn) {
  rtn.insert_entry_call(&GprofTool::enter_fc, this);
}

void GprofTool::instrument_ins(pin::Ins& ins) {
  ins.insert_call(&GprofTool::on_instr_tick, this);
  if (ins.is_ret()) {
    ins.insert_predicated_call(&GprofTool::on_ret, this);
  }
}

// ---- mode-independent accounting ----------------------------------------------

void GprofTool::account_enter(std::uint32_t func, std::uint32_t caller,
                              bool tracked, std::uint64_t retired) {
  if (!tracked) return;
  // Call-graph edge: the attributable routine on top of the stack (before
  // this entry pushed) is the caller.
  if (caller != tquad::kNoKernel) {
    ++edges_[{caller, func}];
  }
  ++calls_[func];
  if (activation_depth_[func]++ == 0) {
    activation_start_[func] = retired;
  }
}

void GprofTool::account_tick(std::uint32_t func, bool tracked,
                             std::uint64_t retired) {
  // Exact self attribution: the function whose instruction is executing.
  ++self_instrs_[func];
  // PC sampling at the fixed period.
  if (retired + 1 >= next_sample_) {
    next_sample_ += options_.sample_period;
    if (tracked) {
      ++samples_[func];
    }
    ++total_samples_;
  }
}

void GprofTool::account_ret(std::uint32_t func, bool tracked,
                            std::uint64_t retired) {
  if (tracked && activation_depth_[func] > 0) {
    if (--activation_depth_[func] == 0) {
      inclusive_[func] += retired - activation_start_[func];
    }
  }
}

void GprofTool::account_fini(std::uint64_t retired) {
  total_retired_ = retired;
  // Close any activations still open at program exit (entry function etc.).
  for (std::size_t k = 0; k < inclusive_.size(); ++k) {
    if (activation_depth_[k] > 0) {
      inclusive_[k] += retired - activation_start_[k];
      activation_depth_[k] = 0;
    }
  }
}

// ---- standalone trampolines -----------------------------------------------------

void GprofTool::enter_fc(void* tool, const pin::RtnArgs& args) {
  auto& self = *static_cast<GprofTool*>(tool);
  const std::uint32_t caller = self.stack_.top();
  self.stack_.on_enter(args.func);
  self.account_enter(args.func, caller, self.stack_.tracked(args.func),
                     args.retired);
}

void GprofTool::on_ret(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<GprofTool*>(tool);
  self.account_ret(args.func, self.stack_.tracked(args.func), args.retired);
  self.stack_.on_ret(args.func);
}

void GprofTool::on_instr_tick(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<GprofTool*>(tool);
  self.account_tick(args.func, self.stack_.tracked(args.func), args.retired);
}

// ---- session-mode consumer ------------------------------------------------------

void GprofTool::on_kernel_enter(const session::EnterEvent& event) {
  account_enter(event.func, event.caller, event.tracked, event.retired);
}

void GprofTool::on_tick(const session::TickEvent& event) {
  account_tick(event.func, event.tracked, event.retired);
}

void GprofTool::on_tick_run(const session::TickRunEvent& run) {
  self_instrs_[run.func] += run.count;
  // Closed-form PC sampling over [first_retired, first_retired + count). In
  // a sequential tick stream next_sample_ > first_retired always holds on
  // entry (each processed tick leaves next_sample_ at least two ahead of
  // it), so the sample points inside the run are exactly next_sample_ - 1,
  // next_sample_ - 1 + period, ... — the same ones the per-tick
  // account_tick loop would hit.
  const std::uint64_t last = run.first_retired + run.count;  // max (retired + 1)
  if (last >= next_sample_) {
    const std::uint64_t hits = (last - next_sample_) / options_.sample_period + 1;
    next_sample_ += hits * options_.sample_period;
    if (run.tracked) {
      samples_[run.func] += hits;
    }
    total_samples_ += hits;
  }
}

void GprofTool::on_kernel_ret(const session::RetEvent& event) {
  account_ret(event.func, event.tracked, event.retired);
}

void GprofTool::on_session_end(std::uint64_t total_retired) {
  account_fini(total_retired);
}

std::vector<GprofTool::CallEdge> GprofTool::call_graph() const {
  std::vector<CallEdge> edges;
  edges.reserve(edges_.size());
  for (const auto& [key, count] : edges_) {
    edges.push_back(CallEdge{key.first, key.second, count});
  }
  std::sort(edges.begin(), edges.end(), [](const CallEdge& a, const CallEdge& b) {
    return a.calls > b.calls;
  });
  return edges;
}

std::uint64_t GprofTool::exact_self_instructions(std::uint32_t kernel) const {
  TQUAD_CHECK(kernel < self_instrs_.size(), "kernel id out of range");
  return self_instrs_[kernel];
}

std::uint64_t GprofTool::samples(std::uint32_t kernel) const {
  TQUAD_CHECK(kernel < samples_.size(), "kernel id out of range");
  return samples_[kernel];
}

std::uint64_t GprofTool::inclusive_instructions(std::uint32_t kernel) const {
  TQUAD_CHECK(kernel < inclusive_.size(), "kernel id out of range");
  return inclusive_[kernel];
}

std::uint64_t GprofTool::calls(std::uint32_t kernel) const {
  TQUAD_CHECK(kernel < calls_.size(), "kernel id out of range");
  return calls_[kernel];
}

std::vector<FlatRow> GprofTool::flat_profile() const {
  std::vector<FlatRow> rows;
  for (std::uint32_t k = 0; k < kernel_count(); ++k) {
    if (!stack_.tracked(k) || calls_[k] == 0) continue;
    FlatRow row;
    row.kernel = k;
    row.name = kernel_name(k);
    row.time_fraction =
        total_samples_ == 0
            ? 0.0
            : static_cast<double>(samples_[k]) / static_cast<double>(total_samples_);
    row.self_seconds =
        instructions_to_seconds(samples_[k] * options_.sample_period);
    row.calls = calls_[k];
    if (calls_[k] > 0) {
      row.self_ms_per_call = row.self_seconds * 1000.0 / static_cast<double>(calls_[k]);
      row.total_ms_per_call = instructions_to_seconds(inclusive_[k]) * 1000.0 /
                              static_cast<double>(calls_[k]);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const FlatRow& a, const FlatRow& b) {
    if (a.time_fraction != b.time_fraction) return a.time_fraction > b.time_fraction;
    return a.name < b.name;
  });
  return rows;
}

TextTable GprofTool::flat_profile_table() const {
  TextTable table({"kernel", "%time", "self seconds", "calls", "self ms/call",
                   "total ms/call"});
  for (const FlatRow& row : flat_profile()) {
    table.add_row({row.name, format_percent(row.time_fraction),
                   format_fixed(row.self_seconds, 4), format_count(row.calls),
                   format_fixed(row.self_ms_per_call, 3),
                   format_fixed(row.total_ms_per_call, 3)});
  }
  return table;
}

}  // namespace tq::gprof
