// gsim: a gprof-equivalent flat profiler over the tq VM.
//
// The paper uses gprof to pick the top kernels of hArtes wfs (Table I).
// gprof attributes *self* time by sampling the program counter at a fixed
// wall-clock rate and counts calls exactly via instrumented prologues. On a
// deterministic interpreter the natural clock is the retired-instruction
// counter, so this tool:
//   * samples the executing function every `sample_period` instructions
//     (the statistical estimate gprof reports — the paper runs the program
//     fifty times to tame exactly this sampling noise);
//   * counts every instruction's owning function exactly (the ground truth
//     the sampled estimate converges to; exposed for validation);
//   * counts calls exactly, and measures inclusive ("total") time per
//     function by timing outermost activations, handling recursion the way
//     gprof's call-graph propagation intends.
//
// Instruction counts convert to seconds through a CPU model
// (cycles = instructions / IPC; seconds = cycles / frequency), defaulting to
// the paper's 2.83 GHz Core 2 Quad.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minipin/minipin.hpp"
#include "session/events.hpp"
#include "tquad/callstack.hpp"
#include "support/table.hpp"

namespace tq::gprof {

/// Sampling and CPU-model options.
struct Options {
  std::uint64_t sample_period = 10'000;  ///< instructions between PC samples
  double clock_ghz = 2.83;               ///< paper's Q9550
  double ipc = 1.0;                      ///< instructions per cycle
  tquad::LibraryPolicy library_policy = tquad::LibraryPolicy::kExclude;
};

/// One flat-profile row with the Table I columns.
struct FlatRow {
  std::uint32_t kernel = 0;
  std::string name;
  double time_fraction = 0.0;     ///< "%time" (from samples)
  double self_seconds = 0.0;      ///< "self seconds"
  std::uint64_t calls = 0;        ///< "calls"
  double self_ms_per_call = 0.0;  ///< "self ms/call"
  double total_ms_per_call = 0.0; ///< "total ms/call" (inclusive)
};

/// The profiler tool. Construct before the run (standalone with an Engine,
/// or session mode with a Program plus ProfileSession::add_consumer — use
/// the same library policy as the session); query afterwards.
class GprofTool : public session::AnalysisConsumer {
 public:
  GprofTool(pin::Engine& engine, Options options = {});
  GprofTool(const vm::Program& program, Options options = {});

  GprofTool(const GprofTool&) = delete;
  GprofTool& operator=(const GprofTool&) = delete;

  /// Flat profile sorted by descending self time (sampled), Table I layout.
  std::vector<FlatRow> flat_profile() const;

  /// Render as the paper's flat-profile table.
  TextTable flat_profile_table() const;

  /// One caller->callee edge of the dynamic call graph (gprof's second
  /// report). Counts are exact, not sampled.
  struct CallEdge {
    std::uint32_t caller = 0;
    std::uint32_t callee = 0;
    std::uint64_t calls = 0;
  };

  /// The dynamic call graph, heaviest edges first. Only edges between
  /// tracked routines appear; program entry has no caller edge.
  std::vector<CallEdge> call_graph() const;

  /// Exact per-function self instruction count (ground truth).
  std::uint64_t exact_self_instructions(std::uint32_t kernel) const;
  /// Sampled per-function hit count.
  std::uint64_t samples(std::uint32_t kernel) const;
  /// Exact inclusive instruction count (outermost activations).
  std::uint64_t inclusive_instructions(std::uint32_t kernel) const;
  std::uint64_t calls(std::uint32_t kernel) const;
  std::uint64_t total_samples() const noexcept { return total_samples_; }
  std::uint64_t total_retired() const noexcept { return total_retired_; }

  double instructions_to_seconds(std::uint64_t instructions) const noexcept {
    return static_cast<double>(instructions) / (options_.ipc * options_.clock_ghz * 1e9);
  }

  std::size_t kernel_count() const noexcept { return self_instrs_.size(); }
  const std::string& kernel_name(std::uint32_t kernel) const {
    return program_.functions()[kernel].name;
  }

  // session::AnalysisConsumer (session mode). Memory accesses carry nothing
  // a call-graph profile uses.
  unsigned event_interests() const override {
    return kEnterInterest | kTickInterest | kRetInterest;
  }
  void on_kernel_enter(const session::EnterEvent& event) override;
  void on_tick(const session::TickEvent& event) override;
  void on_tick_run(const session::TickRunEvent& run) override;
  void on_kernel_ret(const session::RetEvent& event) override;
  void on_session_end(std::uint64_t total_retired) override;
  void on_finish(const vm::RunOutcome& outcome) override { outcome_ = outcome; }

  /// How the observed run ended (session mode; kHalted for a clean run).
  /// A trapped/truncated outcome means the profile is a valid prefix.
  const vm::RunOutcome& outcome() const noexcept { return outcome_; }

 private:
  static void enter_fc(void* tool, const pin::RtnArgs& args);
  static void on_ret(void* tool, const pin::InsArgs& args);
  static void on_instr_tick(void* tool, const pin::InsArgs& args);

  void instrument_rtn(pin::Rtn& rtn);
  void instrument_ins(pin::Ins& ins);

  // Mode-independent accounting.
  void account_enter(std::uint32_t func, std::uint32_t caller, bool tracked,
                     std::uint64_t retired);
  void account_tick(std::uint32_t func, bool tracked, std::uint64_t retired);
  void account_ret(std::uint32_t func, bool tracked, std::uint64_t retired);
  void account_fini(std::uint64_t retired);

  const vm::Program& program_;
  Options options_;
  tquad::CallStack stack_;  ///< standalone attribution; static tables in session mode
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edges_;
  std::vector<std::uint64_t> self_instrs_;
  std::vector<std::uint64_t> samples_;
  std::vector<std::uint64_t> calls_;
  std::vector<std::uint64_t> inclusive_;
  std::vector<std::uint64_t> activation_depth_;
  std::vector<std::uint64_t> activation_start_;
  vm::RunOutcome outcome_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t total_retired_ = 0;
  std::uint64_t next_sample_ = 0;
};

}  // namespace tq::gprof
