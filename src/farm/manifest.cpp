#include "farm/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/check.hpp"

namespace tq::farm {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void Manifest::record_farm(std::uint64_t job_count, std::uint64_t slice_interval) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{\"event\":\"farm\",\"jobs\":%" PRIu64 ",\"slice\":%" PRIu64 "}",
                job_count, slice_interval);
  log_.append(buf);
}

void Manifest::record_job(std::uint32_t id, const std::string& trace_path,
                          bool whole, std::uint64_t block_lo,
                          std::uint64_t block_hi) {
  std::string line = "{\"event\":\"job\",\"id\":" + std::to_string(id) +
                     ",\"trace\":\"" + json_escape(trace_path) + "\"" +
                     ",\"whole\":" + (whole ? "1" : "0") +
                     ",\"lo\":" + std::to_string(block_lo) +
                     ",\"hi\":" + std::to_string(block_hi) + "}";
  log_.append(line);
}

void Manifest::record_done(std::uint32_t id, std::uint32_t attempts,
                           const std::string& sidecar_path) {
  std::string line = "{\"event\":\"done\",\"id\":" + std::to_string(id) +
                     ",\"attempts\":" + std::to_string(attempts) +
                     ",\"sidecar\":\"" + json_escape(sidecar_path) + "\"}";
  log_.append(line);
}

void Manifest::record_quarantine(std::uint32_t id, std::uint32_t attempts,
                                 const std::string& reason,
                                 const std::string& stderr_path) {
  std::string line = "{\"event\":\"quarantine\",\"id\":" + std::to_string(id) +
                     ",\"attempts\":" + std::to_string(attempts) +
                     ",\"reason\":\"" + json_escape(reason) + "\"" +
                     ",\"stderr\":\"" + json_escape(stderr_path) + "\"}";
  log_.append(line);
}

namespace {

// The journal is machine-written by this module, so the reader is a
// matching extractor, not a general JSON parser: it pulls `"key":<number>`
// and `"key":"<string>"` pairs off one line.

bool extract_u64(const std::string& line, const std::string& key,
                 std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

bool extract_string(const std::string& line, const std::string& key,
                    std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  out.clear();
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) return false;
      const char next = line[++i];
      if (next == 'u') {
        if (i + 4 >= line.size()) return false;
        const std::string hex = line.substr(i + 1, 4);
        out.push_back(static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16)));
        i += 4;
      } else {
        out.push_back(next);
      }
    } else if (c == '"') {
      return true;
    } else {
      out.push_back(c);
    }
  }
  return false;  // unterminated string: torn line
}

}  // namespace

ManifestState Manifest::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) TQUAD_THROW("cannot open manifest '" + path + "'");
  ManifestState state;
  std::string line;
  while (std::getline(in, line)) {
    // A torn final line (supervisor killed mid-append) fails extraction and
    // is dropped; the job it described simply re-runs.
    std::string event;
    if (!extract_string(line, "event", event)) continue;
    std::uint64_t id = 0;
    if (event == "farm") {
      extract_u64(line, "jobs", state.job_count);
      extract_u64(line, "slice", state.slice_interval);
    } else if (event == "job") {
      if (!extract_u64(line, "id", id)) continue;
      ManifestState::Job job;
      if (!extract_string(line, "trace", job.trace_path)) continue;
      std::uint64_t whole = 1;
      extract_u64(line, "whole", whole);
      job.whole = whole != 0;
      extract_u64(line, "lo", job.block_lo);
      extract_u64(line, "hi", job.block_hi);
      state.jobs[static_cast<std::uint32_t>(id)] = std::move(job);
    } else if (event == "done") {
      if (!extract_u64(line, "id", id)) continue;
      ManifestState::Done done;
      std::uint64_t attempts = 0;
      extract_u64(line, "attempts", attempts);
      done.attempts = static_cast<std::uint32_t>(attempts);
      if (!extract_string(line, "sidecar", done.sidecar_path)) continue;
      state.done[static_cast<std::uint32_t>(id)] = std::move(done);
    } else if (event == "quarantine") {
      if (!extract_u64(line, "id", id)) continue;
      ManifestState::Quarantined q;
      std::uint64_t attempts = 0;
      extract_u64(line, "attempts", attempts);
      q.attempts = static_cast<std::uint32_t>(attempts);
      extract_string(line, "reason", q.reason);
      extract_string(line, "stderr", q.stderr_path);
      state.quarantined[static_cast<std::uint32_t>(id)] = std::move(q);
    }
  }
  return state;
}

}  // namespace tq::farm
