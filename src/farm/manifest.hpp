// Crash-safe checkpoint manifest for the replay farm.
//
// The supervisor journals its progress as JSONL — one self-contained JSON
// object per line, appended and fsync'd through tq::AppendLog:
//
//   {"event":"farm","jobs":5,"slice":50000}
//   {"event":"job","id":0,"trace":"a.tqtr","lo":0,"hi":0,"whole":1}
//   {"event":"done","id":0,"attempts":1,"sidecar":"state/job0.tqfs"}
//   {"event":"quarantine","id":3,"attempts":3,"reason":"signal 11 (SIGSEGV)",
//    "stderr":"state/job3.attempt3.stderr"}
//
// A `-resume` run replays the journal: `done` jobs load their sidecars and
// are not re-run, `quarantine` jobs stay quarantined, everything else runs.
// Because every record is one fsync'd line, killing the supervisor at any
// instant loses at most the line being written — load() drops a torn final
// line — and never a completed job.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/atomic_file.hpp"

namespace tq::farm {

/// Journal view after load(): what a previous supervisor got done.
struct ManifestState {
  struct Job {
    std::string trace_path;
    bool whole = true;
    std::uint64_t block_lo = 0;
    std::uint64_t block_hi = 0;
  };
  struct Done {
    std::uint32_t attempts = 0;
    std::string sidecar_path;
  };
  struct Quarantined {
    std::uint32_t attempts = 0;
    std::string reason;
    std::string stderr_path;
  };

  std::uint64_t job_count = 0;       ///< from the farm header line
  std::uint64_t slice_interval = 0;  ///< from the farm header line
  std::map<std::uint32_t, Job> jobs;
  std::map<std::uint32_t, Done> done;
  std::map<std::uint32_t, Quarantined> quarantined;
};

/// The write side. One instance per supervisor run; append-only.
class Manifest {
 public:
  /// Open `path` for appending (created if absent). Throws tq::Error.
  void open(const std::string& path) { log_.open(path); }

  void record_farm(std::uint64_t job_count, std::uint64_t slice_interval);
  void record_job(std::uint32_t id, const std::string& trace_path, bool whole,
                  std::uint64_t block_lo, std::uint64_t block_hi);
  void record_done(std::uint32_t id, std::uint32_t attempts,
                   const std::string& sidecar_path);
  void record_quarantine(std::uint32_t id, std::uint32_t attempts,
                         const std::string& reason,
                         const std::string& stderr_path);

  /// Parse a journal. Unreadable file → throws; a torn final line is
  /// silently dropped (the crash window AppendLog permits).
  static ManifestState load(const std::string& path);

 private:
  AppendLog log_;
};

/// Minimal JSON string escaping for the journal (quotes and backslashes;
/// control characters become \u00XX). Exposed for tests.
std::string json_escape(const std::string& raw);

}  // namespace tq::farm
