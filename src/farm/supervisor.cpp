#include "farm/supervisor.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "farm/manifest.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace tq::farm {

namespace {

using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_signals = 0;

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) TQUAD_THROW("cannot open '" + path + "'");
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exit " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" + (name ? name : "?") + ")";
  }
  return "unknown wait status " + std::to_string(status);
}

}  // namespace

void Supervisor::install_signal_handlers() {
  struct sigaction action {};
  // Count signals instead of latching a flag: the run loop maps 1 → drain,
  // >= 2 → escalate (SIGKILL in-flight workers). No SA_RESETHAND — the
  // escalation policy lives in the loop, not in handler disposition; no
  // SA_RESTART so the poll sleep wakes promptly.
  action.sa_handler = [](int) { g_signals = g_signals + 1; };
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int Supervisor::signal_count() noexcept { return g_signals; }

struct Supervisor::JobState {
  enum class Phase { kPending, kRunning, kDone, kQuarantined };

  JobSpec spec;
  Phase phase = Phase::kPending;
  unsigned attempts = 0;  ///< attempts started so far
  Clock::time_point eligible_at = Clock::time_point::min();  ///< backoff gate
  pid_t pid = -1;
  Clock::time_point deadline = Clock::time_point::max();  ///< watchdog
  bool timed_out = false;
  JobReport report;  ///< valid when kDone
};

Supervisor::Supervisor(FarmOptions options, std::vector<JobSpec> jobs)
    : options_(std::move(options)), specs_(std::move(jobs)) {
  TQUAD_CHECK(!options_.worker_exe.empty(), "farm: worker executable unset");
  TQUAD_CHECK(!options_.state_dir.empty(), "farm: state dir unset");
  TQUAD_CHECK(options_.max_workers > 0, "farm: max_workers must be positive");
  TQUAD_CHECK(options_.max_attempts > 0, "farm: max_attempts must be positive");
}

std::string Supervisor::sidecar_path(std::uint32_t job_id) const {
  return options_.state_dir + "/job" + std::to_string(job_id) + ".tqfs";
}

std::string Supervisor::stderr_path(std::uint32_t job_id, unsigned attempt) const {
  return options_.state_dir + "/job" + std::to_string(job_id) + ".attempt" +
         std::to_string(attempt) + ".stderr";
}

std::string Supervisor::manifest_path() const {
  return options_.state_dir + "/manifest.jsonl";
}

std::uint64_t Supervisor::retry_delay_ms(std::uint32_t job_id,
                                         unsigned attempt) const {
  // Exponential backoff with deterministic per-(job, attempt) jitter, so
  // retry schedules never synchronise into thundering herds yet reruns of
  // the farm behave identically.
  const unsigned shift = std::min(attempt - 1, 10u);
  const std::uint64_t base = options_.backoff_ms << shift;
  SplitMix64 rng(options_.seed ^ (static_cast<std::uint64_t>(job_id) << 32) ^
                 attempt);
  return base + rng.next_below(options_.backoff_ms + 1);
}

void Supervisor::spawn(JobState& job) {
  ++job.attempts;
  const unsigned attempt = job.attempts;
  std::vector<std::string> args;
  args.push_back(options_.worker_exe);
  args.push_back("-worker");
  args.push_back("-trace");
  args.push_back(job.spec.trace_path);
  args.push_back("-sidecar");
  args.push_back(sidecar_path(job.spec.id));
  args.push_back("-job-id");
  args.push_back(std::to_string(job.spec.id));
  args.push_back("-attempt");
  args.push_back(std::to_string(attempt));
  args.push_back("-slice");
  args.push_back(std::to_string(options_.slice_interval));
  if (job.spec.whole) {
    if (!options_.image_path.empty()) {
      args.push_back("-image");
      args.push_back(options_.image_path);
    }
  } else {
    args.push_back("-block-lo");
    args.push_back(std::to_string(job.spec.block_lo));
    args.push_back("-block-hi");
    args.push_back(std::to_string(job.spec.block_hi));
  }
  // Chaos only on non-final attempts: the last attempt always runs clean,
  // so chaos perturbs schedules and retry paths but never the result set.
  const bool chaos = (options_.chaos_kill > 0.0 || options_.chaos_hang > 0.0) &&
                     attempt < options_.max_attempts;
  if (chaos) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", options_.chaos_kill);
    args.push_back("-chaos-kill");
    args.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.6f", options_.chaos_hang);
    args.push_back("-chaos-hang");
    args.push_back(buf);
    args.push_back("-chaos-seed");
    args.push_back(std::to_string(options_.chaos_seed));
  }

  const std::string capture = stderr_path(job.spec.id, attempt);
  const pid_t pid = ::fork();
  TQUAD_CHECK(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    // Child. Only async-signal-safe calls until execv.
    if (options_.rss_mb > 0) {
      struct rlimit limit;
      limit.rlim_cur = options_.rss_mb << 20;
      limit.rlim_max = options_.rss_mb << 20;
      ::setrlimit(RLIMIT_AS, &limit);
    }
    const int err_fd =
        ::open(capture.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (err_fd >= 0) {
      ::dup2(err_fd, 2);
      if (err_fd != 2) ::close(err_fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // Unreachable on success; 127 mimics the shell's command-not-found.
    const char msg[] = "farm worker: execv failed\n";
    ::write(2, msg, sizeof msg - 1);
    ::_exit(127);
  }
  job.pid = pid;
  job.phase = JobState::Phase::kRunning;
  job.timed_out = false;
  job.deadline = options_.timeout_ms > 0
                     ? Clock::now() + std::chrono::milliseconds(options_.timeout_ms)
                     : Clock::time_point::max();
}

FarmOutcome Supervisor::run() {
  // State dir + checkpoint journal first: a job only ever starts after the
  // manifest knows about it.
  if (::mkdir(options_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    TQUAD_THROW("cannot create state dir '" + options_.state_dir +
                "': " + std::strerror(errno));
  }

  std::vector<JobState> jobs(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) jobs[i].spec = specs_[i];

  FarmOutcome outcome;
  Manifest manifest;
  if (options_.resume) {
    // A mismatched manifest is a user mistake (different -traces, -slice, or
    // -shard-blocks than the checkpointed run), not an internal invariant:
    // report it as a recoverable error so the CLI exits 1, state intact.
    const ManifestState prior = Manifest::load(manifest_path());
    if (prior.job_count != specs_.size()) {
      TQUAD_THROW("farm: -resume job count mismatch (manifest has " +
                  std::to_string(prior.job_count) + ", flags produce " +
                  std::to_string(specs_.size()) +
                  "); same traces and sharding required");
    }
    if (prior.slice_interval != options_.slice_interval) {
      TQUAD_THROW("farm: -resume slice interval mismatch (manifest has " +
                  std::to_string(prior.slice_interval) + ")");
    }
    for (JobState& job : jobs) {
      const auto it = prior.jobs.find(job.spec.id);
      if (it == prior.jobs.end() ||
          it->second.trace_path != job.spec.trace_path ||
          it->second.whole != job.spec.whole ||
          it->second.block_lo != job.spec.block_lo ||
          it->second.block_hi != job.spec.block_hi) {
        TQUAD_THROW("farm: -resume job " + std::to_string(job.spec.id) +
                    " does not match the manifest");
      }
      if (const auto done = prior.done.find(job.spec.id);
          done != prior.done.end()) {
        job.report = decode_sidecar(read_text_file(done->second.sidecar_path));
        job.phase = JobState::Phase::kDone;
        job.attempts = done->second.attempts;
      } else if (prior.quarantined.count(job.spec.id) != 0) {
        job.phase = JobState::Phase::kQuarantined;
        job.attempts = options_.max_attempts;
      }
    }
    manifest.open(manifest_path());
    std::size_t already = 0;
    for (const JobState& job : jobs) {
      already += job.phase == JobState::Phase::kDone ? 1 : 0;
    }
    std::printf("farm: resuming, %zu/%zu jobs already done\n", already,
                jobs.size());
  } else {
    manifest.open(manifest_path());
    manifest.record_farm(specs_.size(), options_.slice_interval);
    for (const JobSpec& spec : specs_) {
      manifest.record_job(spec.id, spec.trace_path, spec.whole, spec.block_lo,
                          spec.block_hi);
    }
  }

  std::printf("farm: %zu jobs, %u workers, %u attempts max\n", jobs.size(),
              options_.max_workers, options_.max_attempts);

  bool escalated = false;
  while (true) {
    const int signals = signal_count();
    if (signals >= 2 && !escalated) {
      escalated = true;
      for (JobState& job : jobs) {
        if (job.phase == JobState::Phase::kRunning) {
          ::kill(job.pid, SIGKILL);
        }
      }
      std::printf("farm: second signal, killing in-flight workers\n");
    }

    // Watchdog: a worker past its deadline gets SIGKILL; the regular reap
    // below then classifies the death as a timeout.
    const Clock::time_point now = Clock::now();
    for (JobState& job : jobs) {
      if (job.phase == JobState::Phase::kRunning && !job.timed_out &&
          now >= job.deadline) {
        job.timed_out = true;
        ++outcome.timeouts;
        ::kill(job.pid, SIGKILL);
      }
    }

    // Reap.
    for (JobState& job : jobs) {
      if (job.phase != JobState::Phase::kRunning) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(job.pid, &status, WNOHANG);
      if (reaped == 0) continue;
      TQUAD_CHECK(reaped == job.pid,
                  std::string("waitpid failed: ") + std::strerror(errno));
      job.pid = -1;
      std::string failure;
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        try {
          job.report = decode_sidecar(read_text_file(sidecar_path(job.spec.id)));
          job.phase = JobState::Phase::kDone;
          manifest.record_done(job.spec.id, job.attempts,
                               sidecar_path(job.spec.id));
          std::printf("farm: job %u done (attempt %u)\n", job.spec.id,
                      job.attempts);
          continue;
        } catch (const Error& err) {
          failure = std::string("bad sidecar: ") + err.what();
        }
      } else if (job.timed_out) {
        failure = "timeout after " + std::to_string(options_.timeout_ms) + "ms";
      } else {
        failure = describe_exit(status);
      }
      // Failed attempt.
      if (job.attempts >= options_.max_attempts) {
        job.phase = JobState::Phase::kQuarantined;
        const std::string capture = stderr_path(job.spec.id, job.attempts);
        manifest.record_quarantine(job.spec.id, job.attempts, failure, capture);
        std::printf("farm: job %u QUARANTINED after %u attempts (%s); "
                    "stderr: %s\n",
                    job.spec.id, job.attempts, failure.c_str(), capture.c_str());
      } else {
        job.phase = JobState::Phase::kPending;
        const std::uint64_t delay = retry_delay_ms(job.spec.id, job.attempts);
        job.eligible_at = Clock::now() + std::chrono::milliseconds(delay);
        ++outcome.retries;
        std::printf("farm: job %u failed (%s), retry %u in %llums\n",
                    job.spec.id, failure.c_str(), job.attempts + 1,
                    static_cast<unsigned long long>(delay));
      }
    }

    // Admission (suspended once a drain signal arrived).
    std::size_t running = 0;
    for (const JobState& job : jobs) {
      running += job.phase == JobState::Phase::kRunning ? 1 : 0;
    }
    if (signals == 0) {
      for (JobState& job : jobs) {
        if (running >= options_.max_workers) break;
        if (job.phase != JobState::Phase::kPending) continue;
        if (Clock::now() < job.eligible_at) continue;
        spawn(job);
        ++outcome.spawned;
        ++running;
      }
    }

    bool pending = false;
    for (const JobState& job : jobs) {
      pending |= job.phase == JobState::Phase::kPending;
    }
    if (running == 0 && (!pending || signals > 0)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  for (JobState& job : jobs) {
    switch (job.phase) {
      case JobState::Phase::kDone:
        outcome.reports.push_back(std::move(job.report));
        break;
      case JobState::Phase::kQuarantined:
        outcome.quarantined.push_back(job.spec.id);
        break;
      case JobState::Phase::kPending:
      case JobState::Phase::kRunning:
        outcome.interrupted = true;
        break;
    }
  }
  std::sort(outcome.reports.begin(), outcome.reports.end(),
            [](const JobReport& a, const JobReport& b) {
              return a.job_id < b.job_id;
            });
  if (outcome.interrupted) {
    std::printf("farm: INTERRUPTED — %zu/%zu jobs done; rerun with -resume "
                "to finish\n",
                outcome.reports.size(), jobs.size());
  }
  return outcome;
}

}  // namespace tq::farm
