#include "farm/fleet.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace tq::farm {

void FleetAggregate::add(JobReport&& report) {
  ++jobs_;
  for (const MetricSample& metric : report.metrics) {
    metric_sums_[metric.name] += metric.value;
  }
  auto [it, fresh] = groups_.try_emplace(report.trace_path);
  RunGroup& group = it->second;
  if (fresh) {
    group.trace_path = report.trace_path;
    group.retired = report.retired;
    group.slice_interval = report.slice_interval;
    group.kernel_names = std::move(report.kernel_names);
    group.kernels = std::move(report.kernels);
    group.quad_excl = std::move(report.quad_excl);
    group.quad_incl = std::move(report.quad_incl);
    return;
  }
  TQUAD_CHECK(group.slice_interval == report.slice_interval,
              "fleet: shards of '" + report.trace_path +
                  "' disagree on slice interval");
  TQUAD_CHECK(group.kernels.size() == report.kernels.size(),
              "fleet: shards of '" + report.trace_path +
                  "' disagree on kernel count");
  group.retired = std::max(group.retired, report.retired);
  for (std::size_t k = 0; k < group.kernels.size(); ++k) {
    group.kernels[k].merge(report.kernels[k]);
    // A shard that knew real names (had the image) upgrades the fallback.
    if (group.kernel_names[k].rfind('k', 0) == 0 &&
        report.kernel_names[k].rfind('k', 0) != 0) {
      group.kernel_names[k] = report.kernel_names[k];
    }
  }
  if (report.has_quad()) {
    if (group.quad_excl.empty()) {
      group.quad_excl.assign(group.kernels.size(), QuadCounts{});
      group.quad_incl.assign(group.kernels.size(), QuadCounts{});
    }
    for (std::size_t k = 0; k < group.kernels.size(); ++k) {
      group.quad_excl[k].merge(report.quad_excl[k]);
      group.quad_incl[k].merge(report.quad_incl[k]);
    }
  }
}

std::vector<const RunGroup*> FleetAggregate::groups() const {
  std::vector<const RunGroup*> out;
  out.reserve(groups_.size());
  for (const auto& [path, group] : groups_) out.push_back(&group);
  return out;  // std::map iterates in path order: deterministic
}

std::string FleetAggregate::render_data() const {
  std::string out;
  const std::vector<const RunGroup*> runs = groups();

  // Per-kernel distribution across runs, keyed by kernel name. A kernel
  // absent from a run contributes nothing (no zero-padding): the sample set
  // is "runs in which the kernel exists".
  struct KernelStats {
    std::vector<double> read;   // per-run read_incl bytes
    std::vector<double> write;  // per-run write_incl bytes
    std::uint64_t read_total = 0;
    std::uint64_t write_total = 0;
    std::uint64_t active_slices = 0;
  };
  std::map<std::string, KernelStats> per_kernel;
  for (const RunGroup* run : runs) {
    for (std::size_t k = 0; k < run->kernels.size(); ++k) {
      const tquad::SliceCounters& t = run->kernels[k].totals;
      if (t.empty()) continue;
      KernelStats& stats = per_kernel[run->kernel_names[k]];
      stats.read.push_back(static_cast<double>(t.read_incl));
      stats.write.push_back(static_cast<double>(t.write_incl));
      stats.read_total += t.read_incl;
      stats.write_total += t.write_incl;
      stats.active_slices += run->kernels[k].active_slices();
    }
  }

  out += "== fleet bandwidth (per-run volume distribution) ==\n";
  TextTable table({"kernel", "runs", "read p50", "read p90", "read max",
                   "write p50", "write p90", "write max", "read total",
                   "write total", "slices"});
  for (const auto& [name, stats] : per_kernel) {
    table.add_row({name, std::to_string(stats.read.size()),
                   format_bytes(static_cast<std::uint64_t>(quantile(stats.read, 0.5))),
                   format_bytes(static_cast<std::uint64_t>(quantile(stats.read, 0.9))),
                   format_bytes(static_cast<std::uint64_t>(quantile(stats.read, 1.0))),
                   format_bytes(static_cast<std::uint64_t>(quantile(stats.write, 0.5))),
                   format_bytes(static_cast<std::uint64_t>(quantile(stats.write, 0.9))),
                   format_bytes(static_cast<std::uint64_t>(quantile(stats.write, 1.0))),
                   format_bytes(stats.read_total), format_bytes(stats.write_total),
                   std::to_string(stats.active_slices)});
  }
  out += table.to_ascii();

  out += "\n== fleet runs ==\n";
  TextTable run_table({"trace", "retired", "slice", "kernels", "read", "write"});
  for (const RunGroup* run : runs) {
    std::uint64_t read = 0;
    std::uint64_t write = 0;
    std::size_t active = 0;
    for (const tquad::KernelBandwidth& kernel : run->kernels) {
      read += kernel.totals.read_incl;
      write += kernel.totals.write_incl;
      if (!kernel.totals.empty()) ++active;
    }
    run_table.add_row({run->trace_path, std::to_string(run->retired),
                       std::to_string(run->slice_interval),
                       std::to_string(active), format_bytes(read),
                       format_bytes(write)});
  }
  out += run_table.to_ascii();

  // QUAD sums only when at least one run carried them.
  bool any_quad = false;
  for (const RunGroup* run : runs) any_quad |= !run->quad_excl.empty();
  if (any_quad) {
    std::map<std::string, QuadCounts> quad_sums;  // stack-excluded scope
    for (const RunGroup* run : runs) {
      for (std::size_t k = 0; k < run->quad_excl.size(); ++k) {
        if (run->quad_excl[k].empty()) continue;
        quad_sums[run->kernel_names[k]].merge(run->quad_excl[k]);
      }
    }
    out += "\n== fleet quad (stack excluded, summed; UnMA is an upper bound) ==\n";
    TextTable quad_table({"kernel", "IN", "IN UnMA", "OUT", "OUT UnMA"});
    for (const auto& [name, q] : quad_sums) {
      quad_table.add_row({name, format_bytes(q.in_bytes),
                          std::to_string(q.in_unma), format_bytes(q.out_bytes),
                          std::to_string(q.out_unma)});
    }
    out += quad_table.to_ascii();
  }

  if (!metric_sums_.empty()) {
    out += "\n== fleet worker metrics (summed) ==\n";
    for (const auto& [name, value] : metric_sums_) {
      out += name + " " + std::to_string(value) + "\n";
    }
  }
  return out;
}

}  // namespace tq::farm
