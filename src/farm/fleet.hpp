// Fleet-level aggregation of farm job reports.
//
// Jobs group by trace path: the block-range shards of one trace fold into
// exactly the whole-trace result (tquad::KernelBandwidth::merge is
// associative and shard-boundary-agnostic), so after grouping every group
// is one *run* of one workload. Across runs the fleet report then answers
// the paper's Table IV questions at fleet scale: for each kernel, the
// distribution (p50 / p90 / max) of per-run read and write volume, plus
// fleet-wide sums of the QUAD communication counters.
//
// Determinism contract: render_data() depends only on the set of completed
// job reports — not on attempt counts, retry timing, or completion order —
// so a chaos-ridden farm run and a clean one over the same inputs produce
// byte-identical data reports. Run-health information (quarantines,
// retries, interruption) lives in the stdout summary, not here.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "farm/sidecar.hpp"

namespace tq::farm {

/// One merged run (all shards of one trace folded together).
struct RunGroup {
  std::string trace_path;
  std::uint64_t retired = 0;  ///< max over shards: end of covered range
  std::uint64_t slice_interval = 0;
  std::vector<std::string> kernel_names;
  std::vector<tquad::KernelBandwidth> kernels;
  std::vector<QuadCounts> quad_excl;  ///< empty when no shard had quad data
  std::vector<QuadCounts> quad_incl;
};

/// Accumulates job reports and renders the fleet report.
class FleetAggregate {
 public:
  /// Fold one completed job in. Shards of the same trace must agree on
  /// slice interval and kernel count (throws tq::Error otherwise).
  void add(JobReport&& report);

  std::size_t group_count() const noexcept { return groups_.size(); }
  std::size_t job_count() const noexcept { return jobs_; }

  /// Merged groups in trace-path order (deterministic).
  std::vector<const RunGroup*> groups() const;

  /// The data-only fleet report: per-kernel per-run volume percentiles,
  /// per-group totals, QUAD sums, and summed worker metrics. Deterministic
  /// — see the header comment.
  std::string render_data() const;

  /// Summed worker self-metrics (m lines), fleet-wide.
  const std::map<std::string, std::uint64_t>& metric_sums() const noexcept {
    return metric_sums_;
  }

 private:
  std::map<std::string, RunGroup> groups_;  ///< keyed by trace path
  std::map<std::string, std::uint64_t> metric_sums_;
  std::size_t jobs_ = 0;
};

}  // namespace tq::farm
