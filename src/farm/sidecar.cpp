#include "farm/sidecar.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace tq::farm {

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

}  // namespace

std::string encode_sidecar(const JobReport& report) {
  TQUAD_CHECK(report.kernel_names.size() == report.kernels.size(),
              "kernel_names / kernels size mismatch");
  TQUAD_CHECK(!report.has_quad() ||
                  (report.quad_excl.size() == report.kernels.size() &&
                   report.quad_incl.size() == report.kernels.size()),
              "quad counters must align with kernels");
  std::string out = "TQFS 1\n";
  out += "job ";
  append_u64(out, report.job_id);
  out += "\ntrace ";
  out += report.trace_path;
  out += '\n';
  if (!report.whole) {
    out += "range ";
    append_u64(out, report.block_lo);
    out += ' ';
    append_u64(out, report.block_hi);
    out += '\n';
  }
  out += "retired ";
  append_u64(out, report.retired);
  out += "\nslice ";
  append_u64(out, report.slice_interval);
  out += "\nkernels ";
  append_u64(out, report.kernels.size());
  out += '\n';
  for (std::size_t k = 0; k < report.kernels.size(); ++k) {
    out += "name ";
    append_u64(out, k);
    out += ' ';
    out += report.kernel_names[k];
    out += '\n';
  }
  for (std::size_t k = 0; k < report.kernels.size(); ++k) {
    const tquad::KernelBandwidth& kernel = report.kernels[k];
    if (!kernel.totals.empty()) {
      out += "k ";
      append_u64(out, k);
      for (const std::uint64_t v : {kernel.totals.read_incl, kernel.totals.read_excl,
                                    kernel.totals.write_incl, kernel.totals.write_excl}) {
        out += ' ';
        append_u64(out, v);
      }
      out += '\n';
    }
    for (const tquad::SliceSample& sample : kernel.series) {
      out += "s ";
      append_u64(out, k);
      out += ' ';
      append_u64(out, sample.slice);
      for (const std::uint64_t v :
           {sample.counters.read_incl, sample.counters.read_excl,
            sample.counters.write_incl, sample.counters.write_excl}) {
        out += ' ';
        append_u64(out, v);
      }
      out += '\n';
    }
  }
  if (report.has_quad()) {
    for (std::size_t k = 0; k < report.kernels.size(); ++k) {
      for (const bool excl : {true, false}) {
        const QuadCounts& q = excl ? report.quad_excl[k] : report.quad_incl[k];
        if (q.empty()) continue;
        out += "q ";
        append_u64(out, k);
        out += excl ? " excl" : " incl";
        for (const std::uint64_t v : {q.in_bytes, q.in_unma, q.out_bytes, q.out_unma}) {
          out += ' ';
          append_u64(out, v);
        }
        out += '\n';
      }
    }
  }
  for (const MetricSample& metric : report.metrics) {
    out += "m ";
    out += metric.name;
    out += ' ';
    append_u64(out, metric.value);
    out += '\n';
  }
  out += "end\n";
  return out;
}

namespace {

std::uint64_t parse_u64(std::istringstream& in, const char* what) {
  std::uint64_t value = 0;
  if (!(in >> value)) TQUAD_THROW(std::string("sidecar: bad ") + what);
  return value;
}

// Sidecar bytes are untrusted (a crashed or chaos-killed worker may leave
// anything): structural violations are recoverable decode errors, never
// internal-invariant aborts.
void require(bool ok, const char* what) {
  if (!ok) TQUAD_THROW(std::string("sidecar: ") + what);
}

}  // namespace

JobReport decode_sidecar(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line) || line != "TQFS 1") {
    TQUAD_THROW("sidecar: missing TQFS 1 header");
  }
  JobReport report;
  bool sized = false;
  bool ended = false;
  while (std::getline(lines, line)) {
    if (line == "end") {
      ended = true;
      break;
    }
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (tag == "job") {
      report.job_id = static_cast<std::uint32_t>(parse_u64(in, "job id"));
    } else if (tag == "trace") {
      // Rest of the line verbatim: paths may contain spaces.
      std::getline(in >> std::ws, report.trace_path);
      if (report.trace_path.empty()) TQUAD_THROW("sidecar: empty trace path");
    } else if (tag == "range") {
      report.whole = false;
      report.block_lo = parse_u64(in, "range lo");
      report.block_hi = parse_u64(in, "range hi");
    } else if (tag == "retired") {
      report.retired = parse_u64(in, "retired");
    } else if (tag == "slice") {
      report.slice_interval = parse_u64(in, "slice");
    } else if (tag == "kernels") {
      const std::uint64_t count = parse_u64(in, "kernel count");
      require(count <= 1u << 20, "implausible kernel count");
      report.kernel_names.assign(count, std::string());
      report.kernels.assign(count, tquad::KernelBandwidth{});
      sized = true;
    } else if (tag == "name") {
      require(sized, "name before kernels line");
      const std::uint64_t k = parse_u64(in, "name id");
      require(k < report.kernels.size(), "name id out of range");
      std::getline(in >> std::ws, report.kernel_names[k]);
    } else if (tag == "k") {
      require(sized, "totals before kernels line");
      const std::uint64_t k = parse_u64(in, "kernel id");
      require(k < report.kernels.size(), "kernel id out of range");
      tquad::SliceCounters& t = report.kernels[k].totals;
      t.read_incl = parse_u64(in, "read_incl");
      t.read_excl = parse_u64(in, "read_excl");
      t.write_incl = parse_u64(in, "write_incl");
      t.write_excl = parse_u64(in, "write_excl");
    } else if (tag == "s") {
      require(sized, "sample before kernels line");
      const std::uint64_t k = parse_u64(in, "kernel id");
      require(k < report.kernels.size(), "kernel id out of range");
      tquad::SliceSample sample;
      sample.slice = parse_u64(in, "slice index");
      sample.counters.read_incl = parse_u64(in, "read_incl");
      sample.counters.read_excl = parse_u64(in, "read_excl");
      sample.counters.write_incl = parse_u64(in, "write_incl");
      sample.counters.write_excl = parse_u64(in, "write_excl");
      std::vector<tquad::SliceSample>& series = report.kernels[k].series;
      require(series.empty() || series.back().slice < sample.slice,
              "series not strictly ascending");
      series.push_back(sample);
    } else if (tag == "q") {
      require(sized, "quad before kernels line");
      if (report.quad_excl.empty()) {
        report.quad_excl.assign(report.kernels.size(), QuadCounts{});
        report.quad_incl.assign(report.kernels.size(), QuadCounts{});
      }
      const std::uint64_t k = parse_u64(in, "kernel id");
      require(k < report.kernels.size(), "kernel id out of range");
      std::string scope;
      in >> scope;
      if (scope != "excl" && scope != "incl") {
        TQUAD_THROW("sidecar: bad quad scope '" + scope + "'");
      }
      QuadCounts& q = scope == "excl" ? report.quad_excl[k] : report.quad_incl[k];
      q.in_bytes = parse_u64(in, "in_bytes");
      q.in_unma = parse_u64(in, "in_unma");
      q.out_bytes = parse_u64(in, "out_bytes");
      q.out_unma = parse_u64(in, "out_unma");
    } else if (tag == "m") {
      MetricSample metric;
      in >> metric.name;
      if (metric.name.empty()) TQUAD_THROW("sidecar: empty metric name");
      metric.value = parse_u64(in, "metric value");
      report.metrics.push_back(std::move(metric));
    } else if (!tag.empty()) {
      TQUAD_THROW("sidecar: unknown line tag '" + tag + "'");
    }
  }
  if (!ended) TQUAD_THROW("sidecar: missing end terminator (truncated file?)");
  if (!sized) TQUAD_THROW("sidecar: missing kernels line");
  if (report.trace_path.empty()) TQUAD_THROW("sidecar: missing trace line");
  for (std::size_t k = 0; k < report.kernel_names.size(); ++k) {
    if (report.kernel_names[k].empty()) {
      report.kernel_names[k] = "k" + std::to_string(k);
    }
  }
  return report;
}

}  // namespace tq::farm
