// Worker→supervisor result sidecars for the replay farm.
//
// A farm worker process replays one job (a whole TQTR trace, or a block
// range of one) and writes its complete result — per-kernel bandwidth
// series and totals, optional QUAD counters, and a few self-metrics — as a
// *sidecar file* next to the checkpoint manifest. The supervisor never
// shares memory with workers: the sidecar is the entire interface, which is
// what makes jobs retryable, resumable, and crash-isolated.
//
// The format ("TQFS 1") is line-oriented text: self-describing, stable
// across builds, cheap to diff in tests, and append-proof because a decoder
// requires the `end` terminator. Sidecars are written atomically
// (tq::write_text_atomic), so a file that exists either decodes fully or is
// from a different format version — never torn.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tquad/bandwidth.hpp"

namespace tq::farm {

/// QUAD Table-II style counters for one kernel under one stack
/// classification, flattened to counts (UnMA sets travel as cardinalities:
/// a sidecar crosses a process boundary, address sets stay in the worker).
struct QuadCounts {
  std::uint64_t in_bytes = 0;
  std::uint64_t in_unma = 0;
  std::uint64_t out_bytes = 0;
  std::uint64_t out_unma = 0;

  bool empty() const noexcept {
    return in_bytes == 0 && in_unma == 0 && out_bytes == 0 && out_unma == 0;
  }
  void merge(const QuadCounts& other) noexcept {
    // UnMA cardinalities add as an upper bound — distinct runs may touch
    // overlapping addresses. Exact unions would need the sets themselves.
    in_bytes += other.in_bytes;
    in_unma += other.in_unma;
    out_bytes += other.out_bytes;
    out_unma += other.out_unma;
  }
};

/// One named worker self-metric (monotonic counter).
struct MetricSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Everything a finished job reports back.
struct JobReport {
  std::uint32_t job_id = 0;
  std::string trace_path;
  bool whole = true;           ///< whole trace vs. a block range
  std::uint64_t block_lo = 0;  ///< [lo, hi) when !whole
  std::uint64_t block_hi = 0;
  std::uint64_t retired = 0;   ///< instruction-time covered (end of range)
  std::uint64_t slice_interval = 0;

  /// Index-aligned per-kernel data. Names are function names when the
  /// worker had the guest image, else the stable fallback "k<id>".
  std::vector<std::string> kernel_names;
  std::vector<tquad::KernelBandwidth> kernels;

  /// Optional QUAD counters (workers replaying with an image). Index-
  /// aligned with `kernels` when non-empty.
  std::vector<QuadCounts> quad_excl;
  std::vector<QuadCounts> quad_incl;

  std::vector<MetricSample> metrics;

  bool has_quad() const noexcept { return !quad_excl.empty(); }
};

/// Serialise to the TQFS 1 text format (ends with the `end` terminator).
std::string encode_sidecar(const JobReport& report);

/// Parse a TQFS 1 image. Throws tq::Error on malformed or truncated input
/// (including a missing `end` terminator).
JobReport decode_sidecar(const std::string& text);

}  // namespace tq::farm
