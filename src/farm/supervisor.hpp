// The replay-farm supervisor: fault-tolerant fan-out of replay jobs across
// worker processes.
//
// One supervisor process forks N workers (re-exec'ing this binary in
// `-worker` mode), each replaying one job — a whole TQTR trace or a block
// range of one. Process isolation is the fault boundary: a worker that
// crashes (SIGSEGV, assertion), hangs (wall-clock watchdog → SIGKILL), or
// exceeds its address-space budget (RLIMIT_AS) takes out only its own job,
// which the supervisor retries with exponential backoff plus deterministic
// jitter. A job that keeps failing is *quarantined* after max_attempts,
// with its captured stderr kept for the post-mortem — one poisoned input
// cannot stall the fleet.
//
// Every state transition is journaled to the checkpoint manifest
// (farm/manifest.hpp) before the supervisor acts on it, so `-resume` after
// a supervisor crash re-runs only unfinished jobs and the merged fleet
// output is byte-identical to an uninterrupted run.
//
// SIGINT/SIGTERM request a graceful drain: admission stops, in-flight
// workers finish, the checkpoint stays consistent, and the farm exits 4. A
// second signal escalates: in-flight workers are SIGKILLed (their jobs stay
// pending in the manifest, so they resume cleanly).
#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "farm/sidecar.hpp"

namespace tq::farm {

/// One unit of work: a trace, or a [block_lo, block_hi) range of it.
struct JobSpec {
  std::uint32_t id = 0;
  std::string trace_path;
  bool whole = true;
  std::uint64_t block_lo = 0;
  std::uint64_t block_hi = 0;
};

/// Supervisor policy knobs (all have CLI flags on tquad_farm).
struct FarmOptions {
  std::string worker_exe;    ///< binary to re-exec in -worker mode
  std::string image_path;    ///< guest image for whole-trace jobs (optional)
  std::string state_dir;     ///< sidecars + manifest + stderr captures
  std::uint64_t slice_interval = 50'000;
  unsigned max_workers = 2;  ///< admission control: max in-flight processes
  unsigned max_attempts = 3;
  std::uint64_t timeout_ms = 0;  ///< per-attempt watchdog; 0 = none
  std::uint64_t backoff_ms = 100;
  std::uint64_t rss_mb = 0;  ///< per-worker RLIMIT_AS budget; 0 = none
  std::uint64_t seed = 1;    ///< jitter seed (deterministic backoff)
  bool resume = false;
  /// Chaos injection, forwarded to workers on non-final attempts only (so a
  /// healthy job always completes): probability of self-SIGKILL / of
  /// hanging until the watchdog fires. Test hooks, but always compiled in.
  double chaos_kill = 0.0;
  double chaos_hang = 0.0;
  std::uint64_t chaos_seed = 0;
};

/// What the farm accomplished.
struct FarmOutcome {
  std::vector<JobReport> reports;  ///< completed jobs, ascending job id
  std::vector<std::uint32_t> quarantined;  ///< ascending job id
  std::uint64_t retries = 0;       ///< attempts beyond each job's first
  std::uint64_t spawned = 0;       ///< worker processes forked
  std::uint64_t timeouts = 0;      ///< watchdog kills
  bool interrupted = false;        ///< drained on SIGINT/SIGTERM

  /// Farm exit contract: 0 all jobs merged; 3 degraded (quarantines);
  /// 4 interrupted. (1/2 are tool/usage errors, raised before run().)
  int exit_code() const noexcept {
    if (interrupted) return 4;
    if (!quarantined.empty()) return 3;
    return 0;
  }
};

/// Single-threaded fork/waitpid supervision loop. Construct, then run()
/// once. Progress prints to stdout; the caller renders the fleet report
/// from outcome.reports.
class Supervisor {
 public:
  Supervisor(FarmOptions options, std::vector<JobSpec> jobs);

  FarmOutcome run();

  /// Install the two-stage SIGINT/SIGTERM handler (counts signals; the run
  /// loop polls the count). Call once in main, before run().
  static void install_signal_handlers();
  static int signal_count() noexcept;

  std::string sidecar_path(std::uint32_t job_id) const;
  std::string stderr_path(std::uint32_t job_id, unsigned attempt) const;
  std::string manifest_path() const;

 private:
  struct JobState;

  void spawn(JobState& job);
  std::uint64_t retry_delay_ms(std::uint32_t job_id, unsigned attempt) const;

  FarmOptions options_;
  std::vector<JobSpec> specs_;
};

}  // namespace tq::farm
