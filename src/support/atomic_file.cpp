#include "support/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/check.hpp"

namespace tq {

namespace {

std::string errno_text() { return std::strerror(errno); }

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      TQUAD_THROW("write failed for '" + path + "': " + errno_text());
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  // Per-pid temp name: concurrent writers (farm workers on distinct jobs
  // share a directory) never clobber each other's staging file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) TQUAD_THROW("cannot create '" + tmp + "': " + errno_text());
  try {
    write_all(fd, bytes.data(), bytes.size(), tmp);
    if (::fsync(fd) != 0) {
      TQUAD_THROW("fsync failed for '" + tmp + "': " + errno_text());
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    TQUAD_THROW("close failed for '" + tmp + "': " + errno_text());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = errno_text();
    ::unlink(tmp.c_str());
    TQUAD_THROW("rename '" + tmp + "' -> '" + path + "' failed: " + reason);
  }
}

void write_text_atomic(const std::string& path, const std::string& text) {
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  write_file_atomic(path, bytes);
}

// ---------------------------------------------------------------------------
// AppendLog

AppendLog::~AppendLog() { close(); }

void AppendLog::open(const std::string& path) {
  TQUAD_CHECK(fd_ < 0, "AppendLog already open");
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) TQUAD_THROW("cannot open journal '" + path + "': " + errno_text());
  path_ = path;
}

void AppendLog::append(const std::string& line) {
  TQUAD_CHECK(fd_ >= 0, "AppendLog::append before open");
  std::string record = line;
  record.push_back('\n');
  write_all(fd_, reinterpret_cast<const std::uint8_t*>(record.data()),
            record.size(), path_);
  if (::fsync(fd_) != 0) {
    TQUAD_THROW("fsync failed for journal '" + path_ + "': " + errno_text());
  }
}

void AppendLog::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace tq
