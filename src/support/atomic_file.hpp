// Crash-safe file output.
//
// Two primitives the robustness paths (trace repair, farm sidecars and
// checkpoint manifest) are built on:
//   * write_file_atomic / write_text_atomic — write to `<path>.tmp.<pid>`,
//     fsync, then rename(2) over the destination. A reader never observes a
//     half-written file: either the old bytes or the complete new ones.
//   * AppendLog — an append-only journal (O_APPEND) whose append() fsyncs
//     after every line, so a record that append() returned for survives a
//     crash of the writing process.
//
// Durability caveat: the directory entry itself is not fsync'd, so a whole-
// machine power loss can still lose the rename/append. That is the standard
// trade for journal-grade (process-crash) safety without a dirfd dance, and
// is what the farm's resume logic assumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tq {

/// Atomically replace `path` with `bytes` (temp file + fsync + rename).
/// Throws Error on any I/O failure; the destination is untouched on throw.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Atomically replace `path` with `text`.
void write_text_atomic(const std::string& path, const std::string& text);

/// An append-only, fsync-per-record journal. Lines appended before a crash
/// of this process are on disk; a torn final line (kill mid-write) is the
/// reader's problem — see farm::Manifest::load, which drops it.
class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Open (creating if absent) for appending. Throws Error on failure.
  void open(const std::string& path);
  bool is_open() const noexcept { return fd_ >= 0; }

  /// Append `line` plus a trailing newline, then fsync. Throws Error.
  void append(const std::string& line);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace tq
