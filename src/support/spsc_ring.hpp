// Fixed-capacity single-producer / single-consumer queue with blocking
// backpressure, plus the Doorbell eventcount that lets one drain thread
// multiplex several rings without missing wakeups.
//
// The ring is deliberately mutex+condvar based rather than lock-free: the
// session pipeline pushes *batches* of thousands of events, so queue
// operations are off the hot path, and a locked ring is trivially correct
// under ThreadSanitizer. Capacity starts at the constructed value; a full
// ring first blocks the producer (`push`), which is exactly the
// backpressure the live-analysis pipeline wants — the guest VM slows down
// instead of the process growing without bound. When the owner opted in
// with `set_capacity_limit`, repeat stalls instead grow the ring (doubling
// up to the limit) before blocking resumes: one stall is noise, a stall
// pattern means the ring is simply too small for the workload's burst
// shape, and a bounded growth costs less than parking the producer.
//
// Threading contract: exactly one producer thread calls push/try_push,
// exactly one consumer thread calls try_pop. `close` is idempotent and may
// be called from any thread (the abort path closes from the publisher
// while a producer may be blocked in push): a push that races or follows
// close is a defined outcome — it returns false, the value is dropped, and
// the drop is counted — so shutdown never trips an assertion or deadlocks
// a blocked producer.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace tq {

/// Eventcount used by pipeline workers that drain more than one ring: the
/// worker snapshots `epoch()`, scans its rings with `try_pop`, and — only if
/// no ring yielded anything — sleeps in `wait_past(snapshot)`. Any producer
/// push (or close) rings the bell, so a push that lands between the scan and
/// the sleep advances the epoch and the sleep returns immediately. This makes
/// the scan-then-sleep loop lost-wakeup-free without the worker holding any
/// ring lock while idle.
///
/// The epoch is an atomic, so the two per-publish operations — the
/// publisher's `ring()` and the worker's `epoch()` snapshot — are plain
/// atomic ops on the fast path. The mutex+condvar pair exists only for the
/// actual sleep: `ring()` takes the mutex iff a waiter has registered
/// itself, so a pipeline whose workers keep up never serializes publisher
/// and worker on the bell.
///
/// Lost-wakeup argument (all epoch/waiter operations are seq_cst): a waiter
/// increments `waiters_` under the mutex *before* re-checking the epoch; a
/// publisher bumps the epoch *before* loading `waiters_`. If the publisher
/// reads `waiters_ == 0` and skips the notify, the waiter's increment is
/// later in the total order, so its epoch re-check is later still and
/// observes the bump — the predicate is true and the waiter never sleeps.
/// If the publisher reads `waiters_ != 0`, it passes through the mutex
/// (serializing with the waiter's predicate check) and notifies.
class Doorbell {
 public:
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  void ring() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    // An empty critical section is enough: it orders this notify after any
    // waiter that registered and re-checked the predicate under the mutex.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

  void wait_past(std::uint64_t seen) {
    if (epoch_.load(std::memory_order_seq_cst) != seen) return;
    std::unique_lock<std::mutex> lock(mutex_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lock, [&] {
      return epoch_.load(std::memory_order_seq_cst) != seen;
    });
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : slots_(capacity), capacity_limit_(capacity) {
    TQUAD_CHECK(capacity > 0, "SpscRing capacity must be positive");
  }

  /// Attach the consumer-side doorbell. Must happen before the first push.
  void set_doorbell(Doorbell* bell) { bell_ = bell; }

  /// Opt into capacity auto-tune: after the first observed stall, a push
  /// that finds the ring full grows it (doubling, up to `limit` slots)
  /// instead of blocking; at the limit, blocking backpressure resumes. Call
  /// before the first push. A limit at or below the current capacity keeps
  /// the ring fixed.
  void set_capacity_limit(std::size_t limit) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (limit > capacity_limit_) capacity_limit_ = limit;
  }

  /// What one push observed, reported back to the producer so a batching
  /// layer can adapt without extra locking (the fields are filled from
  /// state already read under the push's own critical section).
  struct PushFeedback {
    std::size_t depth_after = 0;  ///< values queued right after the insert
    bool stalled = false;         ///< the push slept on a full ring
    bool was_empty = false;       ///< insert was the empty->non-empty edge
  };

  /// Producer: enqueue `value`, blocking while the ring is full
  /// (backpressure) unless capacity auto-tune still has headroom. Returns
  /// true once enqueued. A push against a closed ring — including a close
  /// that lands while the producer is blocked on a full ring — drops the
  /// value, counts it in dropped_after_close(), and returns false; that
  /// makes the trap/abort shutdown path a defined outcome instead of an
  /// assertion or a deadlock.
  bool push(T value, PushFeedback* feedback = nullptr) {
    bool was_empty = false;
    bool stalled = false;
    std::size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Wait accounting contract: push_waits counts every *sleep episode*
      // and stall_ns the wall time actually spent asleep — a wakeup that
      // finds the ring full again re-enters the loop and is counted again,
      // so the counters match reality instead of "at most one per call".
      while (size_ == slots_.size() && !closed_) {
        if (slots_.size() < capacity_limit_ && push_waits_ > 0) {
          grow_locked();
          break;
        }
        ++push_waits_;
        stalled = true;
        const auto stall_start = std::chrono::steady_clock::now();
        space_cv_.wait(lock,
                       [&] { return size_ < slots_.size() || closed_; });
        stall_ns_ += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - stall_start)
                .count());
      }
      if (closed_) {
        ++dropped_after_close_;
        if (feedback != nullptr) *feedback = PushFeedback{0, stalled, false};
        return false;
      }
      was_empty = size_ == 0;
      slots_[(head_ + size_) % slots_.size()] = std::move(value);
      ++size_;
      ++pushes_;
      if (size_ > occupancy_high_water_) occupancy_high_water_ = size_;
      depth = size_;
    }
    // Ring the doorbell only on the empty->non-empty edge: while the ring
    // stays non-empty the worker cannot be asleep waiting on it.
    if (was_empty && bell_ != nullptr) bell_->ring();
    if (feedback != nullptr) *feedback = PushFeedback{depth, stalled, was_empty};
    return true;
  }

  /// Producer: non-blocking enqueue. A full ring returns false without
  /// waiting or growing; a closed ring drops and counts like push. Used for
  /// reverse-direction freelists, where a refused value is simply freed.
  bool try_push(T value) {
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        ++dropped_after_close_;
        return false;
      }
      if (size_ == slots_.size()) return false;
      was_empty = size_ == 0;
      slots_[(head_ + size_) % slots_.size()] = std::move(value);
      ++size_;
      ++pushes_;
      if (size_ > occupancy_high_water_) occupancy_high_water_ = size_;
    }
    if (was_empty && bell_ != nullptr) bell_->ring();
    return true;
  }

  /// Drain-barrier owner or abort path: no more pushes will be accepted.
  /// Idempotent, callable from any thread. Wakes the consumer so it can
  /// observe `done()` and any producer blocked in push() so it can fail out.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
    }
    space_cv_.notify_all();
    if (bell_ != nullptr) bell_->ring();
  }

  /// Consumer: dequeue into `out` if anything is queued. Never blocks.
  bool try_pop(T& out) {
    bool was_full = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == 0) return false;
      was_full = size_ == slots_.size();
      out = std::move(slots_[head_]);
      head_ = (head_ + 1) % slots_.size();
      --size_;
    }
    if (was_full) space_cv_.notify_one();
    return true;
  }

  /// Consumer: true once the ring is closed and fully drained.
  bool done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && size_ == 0;
  }

  /// Current capacity in slots (grows under capacity auto-tune).
  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
  }

  /// Post-run introspection counters, consistent under one lock.
  struct Stats {
    std::uint64_t pushes = 0;       ///< values ever enqueued
    std::uint64_t push_waits = 0;   ///< sleep episodes on a full ring
    std::uint64_t stall_ns = 0;     ///< producer wall time blocked on space
    std::uint64_t dropped_after_close = 0;  ///< pushes refused by close
    std::uint64_t occupancy_high_water = 0;  ///< max queued values seen
    std::uint64_t capacity_grows = 0;  ///< auto-tune growth steps taken
    std::uint64_t capacity = 0;        ///< final capacity in slots
  };

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.pushes = pushes_;
    s.push_waits = push_waits_;
    s.stall_ns = stall_ns_;
    s.dropped_after_close = dropped_after_close_;
    s.occupancy_high_water = occupancy_high_water_;
    s.capacity_grows = capacity_grows_;
    s.capacity = slots_.size();
    return s;
  }

  /// Times the producer slept on a full ring (backpressure stalls). Read
  /// after the run for bench/test introspection.
  std::uint64_t push_waits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return push_waits_;
  }

  /// Total values ever pushed (post-run introspection).
  std::uint64_t pushes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushes_;
  }

  /// Pushes refused because the ring was already closed.
  std::uint64_t dropped_after_close() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_after_close_;
  }

 private:
  /// Re-lay the circular buffer into a larger allocation (mutex held).
  /// Safe against the consumer: head_/size_ are only read under the mutex.
  void grow_locked() {
    std::size_t next = slots_.size() * 2;
    if (next > capacity_limit_) next = capacity_limit_;
    std::vector<T> bigger(next);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) % slots_.size()]);
    }
    slots_.swap(bigger);
    head_ = 0;
    ++capacity_grows_;
  }

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;
  std::vector<T> slots_;
  std::size_t capacity_limit_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  std::uint64_t push_waits_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t stall_ns_ = 0;
  std::uint64_t dropped_after_close_ = 0;
  std::uint64_t occupancy_high_water_ = 0;
  std::uint64_t capacity_grows_ = 0;
  Doorbell* bell_ = nullptr;
};

}  // namespace tq
