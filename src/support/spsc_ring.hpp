// Fixed-capacity single-producer / single-consumer queue with blocking
// backpressure, plus the Doorbell eventcount that lets one drain thread
// multiplex several rings without missing wakeups.
//
// The ring is deliberately mutex+condvar based rather than lock-free: the
// session pipeline pushes *batches* of thousands of events, so queue
// operations are off the hot path, and a locked ring is trivially correct
// under ThreadSanitizer. Capacity is fixed at construction; a full ring
// blocks the producer (`push`), which is exactly the backpressure the
// live-analysis pipeline wants — the guest VM slows down instead of the
// process growing without bound.
//
// Threading contract: exactly one producer thread calls push, exactly one
// consumer thread calls try_pop. `close` is idempotent and may be called
// from any thread (the abort path closes from the publisher while a
// producer may be blocked in push): a push that races or follows close is a
// defined outcome — it returns false, the value is dropped, and the drop is
// counted — so shutdown never trips an assertion or deadlocks a blocked
// producer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace tq {

/// Eventcount used by pipeline workers that drain more than one ring: the
/// worker snapshots `epoch()`, scans its rings with `try_pop`, and — only if
/// no ring yielded anything — sleeps in `wait_past(snapshot)`. Any producer
/// push (or close) rings the bell, so a push that lands between the scan and
/// the sleep advances the epoch and the sleep returns immediately. This makes
/// the scan-then-sleep loop lost-wakeup-free without the worker holding any
/// ring lock while idle.
class Doorbell {
 public:
  std::uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  void ring() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++epoch_;
    }
    cv_.notify_all();
  }

  void wait_past(std::uint64_t seen) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return epoch_ != seen; });
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
};

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : slots_(capacity) {
    TQUAD_CHECK(capacity > 0, "SpscRing capacity must be positive");
  }

  /// Attach the consumer-side doorbell. Must happen before the first push.
  void set_doorbell(Doorbell* bell) { bell_ = bell; }

  /// Producer: enqueue `value`, blocking while the ring is full
  /// (backpressure). Returns true once enqueued. A push against a closed
  /// ring — including a close that lands while the producer is blocked on a
  /// full ring — drops the value, counts it in dropped_after_close(), and
  /// returns false; that makes the trap/abort shutdown path a defined
  /// outcome instead of an assertion or a deadlock.
  bool push(T value) {
    bool was_empty = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (size_ == slots_.size() && !closed_) {
        ++push_waits_;
        const auto stall_start = std::chrono::steady_clock::now();
        space_cv_.wait(lock, [&] { return size_ < slots_.size() || closed_; });
        stall_ns_ += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - stall_start)
                .count());
      }
      if (closed_) {
        ++dropped_after_close_;
        return false;
      }
      was_empty = size_ == 0;
      slots_[(head_ + size_) % slots_.size()] = std::move(value);
      ++size_;
      ++pushes_;
      if (size_ > occupancy_high_water_) occupancy_high_water_ = size_;
    }
    // Ring the doorbell only on the empty->non-empty edge: while the ring
    // stays non-empty the worker cannot be asleep waiting on it.
    if (was_empty && bell_ != nullptr) bell_->ring();
    return true;
  }

  /// Drain-barrier owner or abort path: no more pushes will be accepted.
  /// Idempotent, callable from any thread. Wakes the consumer so it can
  /// observe `done()` and any producer blocked in push() so it can fail out.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
    }
    space_cv_.notify_all();
    if (bell_ != nullptr) bell_->ring();
  }

  /// Consumer: dequeue into `out` if anything is queued. Never blocks.
  bool try_pop(T& out) {
    bool was_full = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == 0) return false;
      was_full = size_ == slots_.size();
      out = std::move(slots_[head_]);
      head_ = (head_ + 1) % slots_.size();
      --size_;
    }
    if (was_full) space_cv_.notify_one();
    return true;
  }

  /// Consumer: true once the ring is closed and fully drained.
  bool done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && size_ == 0;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Post-run introspection counters, consistent under one lock.
  struct Stats {
    std::uint64_t pushes = 0;       ///< values ever enqueued
    std::uint64_t push_waits = 0;   ///< pushes that found the ring full
    std::uint64_t stall_ns = 0;     ///< producer wall time blocked on space
    std::uint64_t dropped_after_close = 0;  ///< pushes refused by close
    std::uint64_t occupancy_high_water = 0;  ///< max queued values seen
  };

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.pushes = pushes_;
    s.push_waits = push_waits_;
    s.stall_ns = stall_ns_;
    s.dropped_after_close = dropped_after_close_;
    s.occupancy_high_water = occupancy_high_water_;
    return s;
  }

  /// Times the producer found the ring full and had to wait (backpressure
  /// stalls). Read after the run for bench/test introspection.
  std::uint64_t push_waits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return push_waits_;
  }

  /// Total values ever pushed (post-run introspection).
  std::uint64_t pushes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushes_;
  }

  /// Pushes refused because the ring was already closed.
  std::uint64_t dropped_after_close() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_after_close_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable space_cv_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  std::uint64_t push_waits_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t stall_ns_ = 0;
  std::uint64_t dropped_after_close_ = 0;
  std::uint64_t occupancy_high_water_ = 0;
  Doorbell* bell_ = nullptr;
};

}  // namespace tq
