// Fixed-capacity single-producer / single-consumer queue with blocking
// backpressure, plus the Doorbell eventcount that lets one drain thread
// multiplex several rings without missing wakeups.
//
// The ring is deliberately mutex+condvar based rather than lock-free: the
// session pipeline pushes *batches* of thousands of events, so queue
// operations are off the hot path, and a locked ring is trivially correct
// under ThreadSanitizer. Capacity is fixed at construction; a full ring
// blocks the producer (`push`), which is exactly the backpressure the
// live-analysis pipeline wants — the guest VM slows down instead of the
// process growing without bound.
//
// Threading contract: exactly one producer thread calls push/close, exactly
// one consumer thread calls try_pop. `close` is idempotent and may also be
// called by the producer after the consumer finished (abort path).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace tq {

/// Eventcount used by pipeline workers that drain more than one ring: the
/// worker snapshots `epoch()`, scans its rings with `try_pop`, and — only if
/// no ring yielded anything — sleeps in `wait_past(snapshot)`. Any producer
/// push (or close) rings the bell, so a push that lands between the scan and
/// the sleep advances the epoch and the sleep returns immediately. This makes
/// the scan-then-sleep loop lost-wakeup-free without the worker holding any
/// ring lock while idle.
class Doorbell {
 public:
  std::uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  void ring() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++epoch_;
    }
    cv_.notify_all();
  }

  void wait_past(std::uint64_t seen) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return epoch_ != seen; });
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
};

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : slots_(capacity) {
    TQUAD_CHECK(capacity > 0, "SpscRing capacity must be positive");
  }

  /// Attach the consumer-side doorbell. Must happen before the first push.
  void set_doorbell(Doorbell* bell) { bell_ = bell; }

  /// Producer: enqueue `value`, blocking while the ring is full
  /// (backpressure). Pushing to a closed ring is a programming error.
  void push(T value) {
    bool was_empty = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (size_ == slots_.size()) {
        ++push_waits_;
        space_cv_.wait(lock, [&] { return size_ < slots_.size(); });
      }
      TQUAD_CHECK(!closed_, "push on closed SpscRing");
      was_empty = size_ == 0;
      slots_[(head_ + size_) % slots_.size()] = std::move(value);
      ++size_;
      ++pushes_;
    }
    // Ring the doorbell only on the empty->non-empty edge: while the ring
    // stays non-empty the worker cannot be asleep waiting on it.
    if (was_empty && bell_ != nullptr) bell_->ring();
  }

  /// Producer (or drain-barrier owner): no more pushes will arrive.
  /// Idempotent. Wakes the consumer so it can observe `done()`.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
    }
    if (bell_ != nullptr) bell_->ring();
  }

  /// Consumer: dequeue into `out` if anything is queued. Never blocks.
  bool try_pop(T& out) {
    bool was_full = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == 0) return false;
      was_full = size_ == slots_.size();
      out = std::move(slots_[head_]);
      head_ = (head_ + 1) % slots_.size();
      --size_;
    }
    if (was_full) space_cv_.notify_one();
    return true;
  }

  /// Consumer: true once the ring is closed and fully drained.
  bool done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && size_ == 0;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Times the producer found the ring full and had to wait (backpressure
  /// stalls). Read after the run for bench/test introspection.
  std::uint64_t push_waits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return push_waits_;
  }

  /// Total values ever pushed (post-run introspection).
  std::uint64_t pushes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushes_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable space_cv_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  std::uint64_t push_waits_ = 0;
  std::uint64_t pushes_ = 0;
  Doorbell* bell_ = nullptr;
};

}  // namespace tq
