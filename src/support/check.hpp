// Error handling primitives shared by every tquad library.
//
// Two tiers, following the C++ Core Guidelines (E.*):
//   * `Error` / `TQUAD_THROW` — recoverable, user-facing failures
//     (bad CLI arguments, malformed guest images, I/O errors).
//   * `TQUAD_CHECK` — internal invariants; always on (release included)
//     because a profiler that silently miscounts is worse than one that
//     aborts. The VM hot loop uses `TQUAD_DCHECK` which compiles out in
//     release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tq {

/// Recoverable error raised by tquad libraries. Carries a formatted,
/// user-readable message; never used for internal invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// A command-line usage error: malformed flag syntax or values. The CLIs
/// map this to exit code 2 (vs 1 for other Errors), matching the
/// 0 ok / 1 error / 2 usage / 3 trap contract.
class UsageError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::fprintf(stderr, "TQUAD_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               message.c_str());
  std::abort();
}

}  // namespace detail

}  // namespace tq

/// Raise a tq::Error with the given message (a std::string expression).
#define TQUAD_THROW(msg) throw ::tq::Error(msg)

/// Always-on invariant check. `msg` must be convertible to std::string.
#define TQUAD_CHECK(expr, msg)                                       \
  do {                                                               \
    if (!(expr)) [[unlikely]] {                                      \
      ::tq::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (0)

/// Debug-only invariant check for hot paths (VM dispatch, shadow memory).
#ifdef NDEBUG
#define TQUAD_DCHECK(expr, msg) \
  do {                          \
  } while (0)
#else
#define TQUAD_DCHECK(expr, msg) TQUAD_CHECK(expr, msg)
#endif
