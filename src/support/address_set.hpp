// Unique-memory-address (UnMA) tracking.
//
// QUAD and tQUAD report the number of *distinct* byte addresses a kernel has
// read or written. Addresses cluster heavily (buffers, stack frames), so the
// set is stored as one bitmap per touched 4 KiB page: ~0.5 KiB of bitmap per
// resident page, with popcounts cached so `count()` stays O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "support/paged_memory.hpp"

namespace tq {

/// A set of 64-bit byte addresses, optimised for dense clusters.
class AddressSet {
 public:
  static constexpr std::uint64_t kPageBits = PagedMemory::kPageBits;
  static constexpr std::uint64_t kPageSize = PagedMemory::kPageSize;
  static constexpr std::size_t kWordsPerPage = kPageSize / 64;

  AddressSet() = default;
  AddressSet(const AddressSet&) = delete;
  AddressSet& operator=(const AddressSet&) = delete;
  AddressSet(AddressSet&&) noexcept = default;
  AddressSet& operator=(AddressSet&&) noexcept = default;

  /// Mark the byte range [addr, addr+size) as present.
  void insert_range(std::uint64_t addr, std::uint32_t size);

  /// True if the single byte address is present.
  bool contains(std::uint64_t addr) const noexcept;

  /// Number of distinct byte addresses inserted so far.
  std::uint64_t count() const noexcept { return population_; }

  /// Number of distinct addresses inside [addr, addr+size) — the ranged
  /// popcount behind buffer-coverage reports.
  std::uint64_t count_range(std::uint64_t addr, std::uint64_t size) const noexcept;

  /// Fold `other` into this set (set union) and leave `other` empty. Pages
  /// absent here are adopted wholesale; overlapping pages are OR-merged with
  /// the population recomputed per word. Safe for arbitrary overlap, O(1)
  /// per disjoint page.
  void merge(AddressSet&& other);

  /// Number of resident bitmap pages (memory-footprint diagnostics).
  std::size_t resident_pages() const noexcept { return pages_.size(); }

  void clear() noexcept {
    pages_.clear();
    population_ = 0;
  }

 private:
  struct Bitmap {
    std::uint64_t words[kWordsPerPage] = {};
  };

  Bitmap& touch(std::uint64_t page_no);

  std::unordered_map<std::uint64_t, std::unique_ptr<Bitmap>> pages_;
  std::uint64_t population_ = 0;
};

}  // namespace tq
