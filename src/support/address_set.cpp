#include "support/address_set.hpp"

#include <bit>

namespace tq {

AddressSet::Bitmap& AddressSet::touch(std::uint64_t page_no) {
  auto& slot = pages_[page_no];
  if (!slot) slot = std::make_unique<Bitmap>();
  return *slot;
}

void AddressSet::insert_range(std::uint64_t addr, std::uint32_t size) {
  std::uint64_t remaining = size;
  while (remaining > 0) {
    const std::uint64_t page_no = addr >> kPageBits;
    const std::uint64_t offset = addr & (kPageSize - 1);
    const std::uint64_t in_page = std::min<std::uint64_t>(remaining, kPageSize - offset);
    Bitmap& bm = touch(page_no);
    // Set bits [offset, offset+in_page) word by word.
    std::uint64_t bit = offset;
    std::uint64_t left = in_page;
    while (left > 0) {
      const std::uint64_t word_idx = bit >> 6;
      const std::uint64_t bit_in_word = bit & 63;
      const std::uint64_t span = std::min<std::uint64_t>(left, 64 - bit_in_word);
      const std::uint64_t mask =
          span == 64 ? ~0ull : (((1ull << span) - 1) << bit_in_word);
      const std::uint64_t before = bm.words[word_idx];
      const std::uint64_t after = before | mask;
      population_ += static_cast<std::uint64_t>(std::popcount(after) -
                                                std::popcount(before));
      bm.words[word_idx] = after;
      bit += span;
      left -= span;
    }
    addr += in_page;
    remaining -= in_page;
  }
}

std::uint64_t AddressSet::count_range(std::uint64_t addr,
                                      std::uint64_t size) const noexcept {
  std::uint64_t total = 0;
  std::uint64_t cursor = addr;
  std::uint64_t remaining = size;
  while (remaining > 0) {
    const std::uint64_t page_no = cursor >> kPageBits;
    const std::uint64_t offset = cursor & (kPageSize - 1);
    const std::uint64_t in_page = std::min<std::uint64_t>(remaining, kPageSize - offset);
    auto it = pages_.find(page_no);
    if (it != pages_.end()) {
      std::uint64_t bit = offset;
      std::uint64_t left = in_page;
      while (left > 0) {
        const std::uint64_t word_idx = bit >> 6;
        const std::uint64_t bit_in_word = bit & 63;
        const std::uint64_t span = std::min<std::uint64_t>(left, 64 - bit_in_word);
        const std::uint64_t mask =
            span == 64 ? ~0ull : (((1ull << span) - 1) << bit_in_word);
        total += static_cast<std::uint64_t>(
            std::popcount(it->second->words[word_idx] & mask));
        bit += span;
        left -= span;
      }
    }
    cursor += in_page;
    remaining -= in_page;
  }
  return total;
}

void AddressSet::merge(AddressSet&& other) {
  if (this == &other) return;
  for (auto& [page_no, bitmap] : other.pages_) {
    auto it = pages_.find(page_no);
    if (it == pages_.end()) {
      std::uint64_t pop = 0;
      for (std::size_t w = 0; w < kWordsPerPage; ++w) {
        pop += static_cast<std::uint64_t>(std::popcount(bitmap->words[w]));
      }
      population_ += pop;
      pages_.emplace(page_no, std::move(bitmap));
    } else {
      Bitmap& mine = *it->second;
      for (std::size_t w = 0; w < kWordsPerPage; ++w) {
        const std::uint64_t before = mine.words[w];
        const std::uint64_t after = before | bitmap->words[w];
        population_ += static_cast<std::uint64_t>(std::popcount(after) -
                                                  std::popcount(before));
        mine.words[w] = after;
      }
    }
  }
  other.clear();
}

bool AddressSet::contains(std::uint64_t addr) const noexcept {
  auto it = pages_.find(addr >> kPageBits);
  if (it == pages_.end()) return false;
  const std::uint64_t offset = addr & (kPageSize - 1);
  return (it->second->words[offset >> 6] >> (offset & 63)) & 1;
}

}  // namespace tq
