#include "support/paged_memory.hpp"

#include <bit>

namespace tq {

PagedMemory::Page& PagedMemory::touch_page(std::uint64_t page_no) {
  auto& slot = pages_[page_no];
  if (!slot) {
    slot = std::make_unique<Page>();
    std::memset(slot->bytes, 0, kPageSize);
  }
  return *slot;
}

void PagedMemory::read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t page_no = (addr + done) >> kPageBits;
    const std::uint64_t offset = (addr + done) & kOffsetMask;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, kPageSize - offset);
    if (const Page* page = find_page(page_no)) {
      std::memcpy(out.data() + done, page->bytes + offset, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
}

void PagedMemory::write(std::uint64_t addr, std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t page_no = (addr + done) >> kPageBits;
    const std::uint64_t offset = (addr + done) & kOffsetMask;
    const std::size_t chunk =
        std::min<std::size_t>(in.size() - done, kPageSize - offset);
    Page& page = touch_page(page_no);
    std::memcpy(page.bytes + offset, in.data() + done, chunk);
    done += chunk;
  }
}

std::uint64_t PagedMemory::load(std::uint64_t addr, unsigned size_bytes) const {
  TQUAD_DCHECK(size_bytes == 1 || size_bytes == 2 || size_bytes == 4 || size_bytes == 8,
               "unsupported load size");
  // Fast path: access within one page.
  const std::uint64_t offset = addr & kOffsetMask;
  if (offset + size_bytes <= kPageSize) {
    const Page* page = find_page(addr >> kPageBits);
    if (page == nullptr) return 0;
    std::uint64_t value = 0;
    std::memcpy(&value, page->bytes + offset, size_bytes);
    return value;
  }
  std::uint8_t buf[8] = {};
  read(addr, std::span<std::uint8_t>(buf, size_bytes));
  std::uint64_t value = 0;
  std::memcpy(&value, buf, 8);
  return value;
}

void PagedMemory::store(std::uint64_t addr, std::uint64_t value, unsigned size_bytes) {
  TQUAD_DCHECK(size_bytes == 1 || size_bytes == 2 || size_bytes == 4 || size_bytes == 8,
               "unsupported store size");
  const std::uint64_t offset = addr & kOffsetMask;
  if (offset + size_bytes <= kPageSize) {
    Page& page = touch_page(addr >> kPageBits);
    std::memcpy(page.bytes + offset, &value, size_bytes);
    return;
  }
  std::uint8_t buf[8];
  std::memcpy(buf, &value, 8);
  write(addr, std::span<const std::uint8_t>(buf, size_bytes));
}

double PagedMemory::load_f64(std::uint64_t addr) const {
  return std::bit_cast<double>(load(addr, 8));
}

void PagedMemory::store_f64(std::uint64_t addr, double value) {
  store(addr, std::bit_cast<std::uint64_t>(value), 8);
}

}  // namespace tq
