// Deterministic pseudo-random generation for workloads and tests.
//
// Everything in this repository must be bit-reproducible across runs, so we
// use an explicit SplitMix64 generator seeded by the caller instead of
// std::random_device.
#pragma once

#include <cstdint>

namespace tq {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_unit() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

 private:
  std::uint64_t state_;
};

}  // namespace tq
