#include "support/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/table.hpp"

namespace tq {
namespace {

constexpr const char kRamp[] = " .:-=+*#%@";
constexpr unsigned kRampLevels = sizeof(kRamp) - 2;  // index of densest glyph

/// Downsample `values` to `cells` bucket means.
std::vector<double> downsample(const std::vector<double>& values, unsigned cells) {
  std::vector<double> out(cells, 0.0);
  if (values.empty()) return out;
  const double per_cell = static_cast<double>(values.size()) / cells;
  for (unsigned c = 0; c < cells; ++c) {
    const std::size_t lo = static_cast<std::size_t>(c * per_cell);
    std::size_t hi = static_cast<std::size_t>((c + 1) * per_cell);
    hi = std::max(hi, lo + 1);
    hi = std::min(hi, values.size());
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    out[c] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

double intensity(double value, double max_value, bool log_scale) {
  if (max_value <= 0.0 || value <= 0.0) return 0.0;
  if (!log_scale) return value / max_value;
  return std::log1p(value) / std::log1p(max_value);
}

}  // namespace

std::string render_heat_strips(const std::vector<ChartSeries>& series,
                               const ChartOptions& options) {
  std::ostringstream out;
  std::size_t name_width = 0;
  double max_value = 0.0;
  std::size_t max_len = 0;
  for (const auto& s : series) {
    name_width = std::max(name_width, s.name.size());
    max_len = std::max(max_len, s.values.size());
    for (double v : s.values) max_value = std::max(max_value, v);
  }
  for (const auto& s : series) {
    const auto cells = downsample(s.values, options.width);
    out << s.name << std::string(name_width - s.name.size(), ' ') << " |";
    for (double v : cells) {
      const double t = intensity(v, max_value, options.log_intensity);
      const unsigned level =
          static_cast<unsigned>(std::lround(t * static_cast<double>(kRampLevels)));
      out << kRamp[std::min(level, kRampLevels)];
    }
    out << "|\n";
  }
  if (options.show_scale) {
    out << std::string(name_width, ' ') << "  time -> (" << max_len
        << " slices across " << options.width << " cells; intensity ramp '" << kRamp
        << "', max = " << format_fixed(max_value, 3) << " per slice"
        << (options.log_intensity ? ", log scale" : "") << ")\n";
  }
  return out.str();
}

std::string render_block_chart(const ChartSeries& series, unsigned height,
                               const ChartOptions& options) {
  std::ostringstream out;
  const auto cells = downsample(series.values, options.width);
  double max_value = 0.0;
  for (double v : cells) max_value = std::max(max_value, v);
  out << series.name << "  (max " << format_fixed(max_value, 3) << ")\n";
  for (unsigned row = height; row-- > 0;) {
    const double threshold = (static_cast<double>(row) + 0.5) / height;
    out << "  |";
    for (double v : cells) {
      out << (intensity(v, max_value, options.log_intensity) >= threshold ? '#' : ' ');
    }
    out << "|\n";
  }
  out << "  +" << std::string(options.width, '-') << "+\n";
  return out.str();
}

}  // namespace tq
