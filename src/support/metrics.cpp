#include "support/metrics.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace tq::metrics {

void Registry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void Registry::set_gauge(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  GaugeValue& gauge = gauges_[name];
  gauge.value = value;
  if (value > gauge.high_water) gauge.high_water = value;
}

void Registry::max_gauge(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  GaugeValue& gauge = gauges_[name];
  if (value > gauge.value) gauge.value = value;
  if (value > gauge.high_water) gauge.high_water = value;
}

void Registry::observe(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name].observe(value);
}

void Registry::fold_gauge(const std::string& name, const GaugeValue& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  GaugeValue& gauge = gauges_[name];
  gauge.value += value.value;
  if (value.high_water > gauge.high_water) gauge.high_water = value.high_water;
}

void Registry::fold_histogram(const std::string& name,
                              const Histogram& histogram) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name].merge(histogram);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.assign(counters_.begin(), counters_.end());
  snap.gauges.assign(gauges_.begin(), gauges_.end());
  snap.histograms.assign(histograms_.begin(), histograms_.end());
  return snap;
}

namespace {

void append_line(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  if (n > 0) out.append(buffer, static_cast<std::size_t>(n));
}

}  // namespace

std::string Registry::render_text() const {
  const Snapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    append_line(out, "%s %" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, gauge] : snap.gauges) {
    append_line(out, "%s %" PRIu64 " (high %" PRIu64 ")\n", name.c_str(),
                gauge.value, gauge.high_water);
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::uint64_t mean = hist.count() > 0 ? hist.sum() / hist.count() : 0;
    append_line(out,
                "%s count=%" PRIu64 " sum=%" PRIu64 " mean=%" PRIu64
                " max=%" PRIu64 "\n",
                name.c_str(), hist.count(), hist.sum(), mean, hist.max());
  }
  return out;
}

namespace {

// Metric names are dotted lowercase identifiers, but escape defensively so
// the output is valid JSON whatever ends up in a name.
void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_line(out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string Registry::render_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    append_line(out, ": %" PRIu64, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    append_line(out, ": {\"value\": %" PRIu64 ", \"high_water\": %" PRIu64 "}",
                gauge.value, gauge.high_water);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    append_line(out, ": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                     ", \"max\": %" PRIu64 ", \"buckets\": [",
                hist.count(), hist.sum(), hist.max());
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (hist.bucket(b) == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      append_line(out, "[%" PRIu64 ", %" PRIu64 "]", Histogram::bucket_limit(b),
                  hist.bucket(b));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

ThreadSink::Counter& ThreadSink::counter(std::string name) {
  for (auto& [slot_name, slot] : counters_) {
    if (slot_name == name) return slot;
  }
  counters_.emplace_back(std::move(name), Counter{});
  return counters_.back().second;
}

ThreadSink::Gauge& ThreadSink::gauge(std::string name) {
  for (auto& [slot_name, slot] : gauges_) {
    if (slot_name == name) return slot;
  }
  gauges_.emplace_back(std::move(name), Gauge{});
  return gauges_.back().second;
}

Histogram& ThreadSink::histogram(std::string name) {
  for (auto& [slot_name, slot] : histograms_) {
    if (slot_name == name) return slot;
  }
  histograms_.emplace_back(std::move(name), Histogram{});
  return histograms_.back().second;
}

void ThreadSink::fold() {
  for (auto& [name, slot] : counters_) {
    if (slot.value != 0) registry_.add(name, slot.value);
    slot.value = 0;
  }
  for (auto& [name, slot] : gauges_) {
    if (slot.v.value != 0 || slot.v.high_water != 0) {
      registry_.fold_gauge(name, slot.v);
    }
    slot.v = GaugeValue{};
  }
  for (auto& [name, slot] : histograms_) {
    if (slot.count() != 0) registry_.fold_histogram(name, slot);
    slot.reset();
  }
}

}  // namespace tq::metrics
