// Self-observability primitives: a named-metric registry plus per-thread
// sinks, so the profiler can report on its own machinery (ring backpressure,
// worker batch sizes, shadow-memory growth, trace compression) without
// perturbing the run it is measuring.
//
// Three metric kinds, all unsigned 64-bit:
//   counter   — monotonic total (events seen, bytes written, stall ns)
//   gauge     — last value plus a high-water mark (ring occupancy, pages)
//   histogram — fixed power-of-two buckets with count and sum (batch sizes)
//
// Thread model: the Registry itself is mutex-protected and meant for
// post-run publication and for folding. Code on a hot path never touches
// it — each worker thread owns a ThreadSink, accumulates into plain local
// slots (wait-free, no atomics, no locks), and folds the whole sink into
// the registry exactly once, at a drain barrier (worker exit). Fold
// semantics: counters add, gauge values add with high-waters maxed
// (per-thread gauges describe partitioned state), histograms merge
// bucket-wise. Names are dotted lowercase paths ("pipeline.worker.batches");
// rendering iterates std::map, so text and JSON output is sorted and
// stable-keyed by construction.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tq::metrics {

/// Fixed-bucket size/latency histogram. Bucket 0 holds zeros; bucket b
/// (1..64) holds values in [2^(b-1), 2^b - 1]. 65 buckets cover the full
/// uint64 range, so observe() is a bit_width and an add — no allocation,
/// no branching on configuration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t value) noexcept {
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
    ++buckets_[bucket_of(value)];
  }

  void merge(const Histogram& other) noexcept {
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  void reset() noexcept { *this = Histogram{}; }

  static std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  /// Inclusive upper bound of bucket `b` (0 for the zero bucket).
  static std::uint64_t bucket_limit(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t max() const noexcept { return max_; }
  std::uint64_t bucket(std::size_t b) const noexcept { return buckets_[b]; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

struct GaugeValue {
  std::uint64_t value = 0;
  std::uint64_t high_water = 0;
};

/// Sorted, self-contained copy of a registry's contents.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeValue>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;
};

/// The shared store. Every operation takes the registry mutex, so this is
/// for publication points and fold barriers, not per-event paths — those go
/// through a ThreadSink.
class Registry {
 public:
  /// Counter: add `delta` to `name` (creating it at zero).
  void add(const std::string& name, std::uint64_t delta);

  /// Gauge: overwrite the value, raising the high-water mark.
  void set_gauge(const std::string& name, std::uint64_t value);

  /// Gauge: keep the maximum of the current and new value (and high-water).
  void max_gauge(const std::string& name, std::uint64_t value);

  /// Histogram: record one observation.
  void observe(const std::string& name, std::uint64_t value);

  /// Fold helpers used by ThreadSink: gauge values *add* (each thread owns a
  /// partition of the state), high-waters max.
  void fold_gauge(const std::string& name, const GaugeValue& value);
  void fold_histogram(const std::string& name, const Histogram& histogram);

  Snapshot snapshot() const;

  /// "name value" lines (gauges append the high-water, histograms their
  /// count/sum/mean/max), sorted by name.
  std::string render_text() const;

  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with sorted, stable keys. Histogram buckets render as [limit, count]
  /// pairs for the non-empty buckets only.
  std::string render_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, GaugeValue> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Per-thread accumulator. counter()/gauge()/histogram() hand back slots
/// with stable addresses (the deques never relocate), so a worker resolves
/// its names once and then updates plain memory on the hot path. fold()
/// pushes everything into the registry and resets the local state; the
/// destructor folds any leftovers, which is what ties a worker's metrics to
/// its drain-barrier exit.
class ThreadSink {
 public:
  struct Counter {
    std::uint64_t value = 0;
    void add(std::uint64_t delta = 1) noexcept { value += delta; }
  };
  struct Gauge {
    GaugeValue v;
    void set(std::uint64_t value) noexcept {
      v.value = value;
      if (value > v.high_water) v.high_water = value;
    }
  };

  explicit ThreadSink(Registry& registry) : registry_(registry) {}
  ~ThreadSink() { fold(); }

  ThreadSink(const ThreadSink&) = delete;
  ThreadSink& operator=(const ThreadSink&) = delete;

  Counter& counter(std::string name);
  Gauge& gauge(std::string name);
  Histogram& histogram(std::string name);

  /// Merge everything into the registry and reset the local slots.
  void fold();

 private:
  Registry& registry_;
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace tq::metrics
