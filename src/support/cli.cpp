#include "support/cli.hpp"

#include <charconv>
#include <sstream>

#include "support/check.hpp"

namespace tq {

void CliParser::add_flag(const std::string& name, bool default_value,
                         const std::string& help) {
  TQUAD_CHECK(!options_.contains(name), "duplicate option: " + name);
  Option opt;
  opt.kind = Kind::kFlag;
  opt.help = help;
  opt.flag_value = default_value;
  options_.emplace(name, std::move(opt));
}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  TQUAD_CHECK(!options_.contains(name), "duplicate option: " + name);
  Option opt;
  opt.kind = Kind::kInt;
  opt.help = help;
  opt.int_value = default_value;
  options_.emplace(name, std::move(opt));
}

void CliParser::add_string(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  TQUAD_CHECK(!options_.contains(name), "duplicate option: " + name);
  Option opt;
  opt.kind = Kind::kString;
  opt.help = help;
  opt.string_value = default_value;
  options_.emplace(name, std::move(opt));
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  TQUAD_CHECK(!options_.contains(name), "duplicate option: " + name);
  Option opt;
  opt.kind = Kind::kDouble;
  opt.help = help;
  opt.double_value = default_value;
  options_.emplace(name, std::move(opt));
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-') {
      positional_.push_back(std::move(arg));
      continue;
    }
    // Accept both -name and --name.
    std::string name = arg.substr(arg.starts_with("--") ? 2 : 1);
    std::string inline_value;
    bool has_inline = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      TQUAD_THROW("unknown option '" + arg + "'\n" + help());
    }
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag && !has_inline) {
      opt.flag_value = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) TQUAD_THROW("option '" + name + "' expects a value");
      value = argv[++i];
    }
    switch (opt.kind) {
      case Kind::kFlag:
        opt.flag_value = (value == "1" || value == "true" || value == "yes");
        break;
      case Kind::kInt: {
        std::int64_t parsed = 0;
        auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), parsed);
        if (ec != std::errc() || ptr != value.data() + value.size()) {
          TQUAD_THROW("option '" + name + "' expects an integer, got '" + value + "'");
        }
        opt.int_value = parsed;
        break;
      }
      case Kind::kDouble: {
        try {
          std::size_t pos = 0;
          opt.double_value = std::stod(value, &pos);
          if (pos != value.size()) throw std::invalid_argument(value);
        } catch (const std::exception&) {
          TQUAD_THROW("option '" + name + "' expects a number, got '" + value + "'");
        }
        break;
      }
      case Kind::kString:
        opt.string_value = value;
        break;
    }
  }
}

const CliParser::Option& CliParser::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  TQUAD_CHECK(it != options_.end(), "undeclared option queried: " + name);
  TQUAD_CHECK(it->second.kind == kind, "option queried with wrong type: " + name);
  return it->second;
}

bool CliParser::flag(const std::string& name) const {
  return find(name, Kind::kFlag).flag_value;
}

std::int64_t CliParser::integer(const std::string& name) const {
  return find(name, Kind::kInt).int_value;
}

const std::string& CliParser::str(const std::string& name) const {
  return find(name, Kind::kString).string_value;
}

double CliParser::real(const std::string& name) const {
  return find(name, Kind::kDouble).double_value;
}

std::string CliParser::help() const {
  std::ostringstream out;
  out << description_ << "\noptions:\n";
  for (const auto& [name, opt] : options_) {
    out << "  -" << name;
    switch (opt.kind) {
      case Kind::kFlag:
        out << " (flag, default " << (opt.flag_value ? "on" : "off") << ")";
        break;
      case Kind::kInt:
        out << " <int, default " << opt.int_value << ">";
        break;
      case Kind::kDouble:
        out << " <number, default " << opt.double_value << ">";
        break;
      case Kind::kString:
        out << " <string, default '" << opt.string_value << "'>";
        break;
    }
    out << "\n      " << opt.help << "\n";
  }
  return out.str();
}

}  // namespace tq
