#include "support/table.hpp"

#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace tq {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TQUAD_CHECK(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t column, Align align) {
  TQUAD_CHECK(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  TQUAD_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_ascii(unsigned indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const std::string pad(indent, ' ');
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t fill = widths[c] - row[c].size();
      if (c > 0) out << "  ";
      if (aligns_[c] == Align::kRight) out << std::string(fill, ' ');
      out << row[c];
      if (aligns_[c] == Align::kLeft && c + 1 < row.size()) out << std::string(fill, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = indent;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c > 0 ? 2 : 0);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << ',';
    out << quote(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  unsigned unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, units[unit]);
  }
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3);
  int since_sep = static_cast<int>(digits.size() % 3);
  if (since_sep == 0) since_sep = 3;
  for (char ch : digits) {
    if (since_sep == 0) {
      grouped += ',';
      since_sep = 3;
    }
    grouped += ch;
    --since_sep;
  }
  return grouped;
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals);
}

}  // namespace tq
