// Terminal rendering of the per-kernel bandwidth time series (Figures 6/7).
//
// The paper draws 3D ribbon charts: x = time slice, z = kernel, y = bytes
// moved in the slice. In a terminal we render the same data as one intensity
// row per kernel (a heat strip) plus an optional per-kernel sparkline, which
// preserves exactly what the figures communicate — who is active when, and
// how intensely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tq {

/// One named series of per-slice values.
struct ChartSeries {
  std::string name;
  std::vector<double> values;
};

/// Options controlling the rendering.
struct ChartOptions {
  unsigned width = 96;        ///< number of character cells along the time axis
  bool show_scale = true;     ///< print the intensity legend and max value
  bool log_intensity = true;  ///< map intensity through log1p (bandwidth is bursty)
};

/// Render a set of series as aligned heat strips sharing one time axis.
/// Values are downsampled (bucket means) to `options.width` cells and mapped
/// onto the ramp " .:-=+*#%@" with a shared maximum across all series.
std::string render_heat_strips(const std::vector<ChartSeries>& series,
                               const ChartOptions& options = {});

/// Render one series as a multi-row block chart (taller, for single-kernel
/// inspection). `height` is the number of text rows used for the y axis.
std::string render_block_chart(const ChartSeries& series, unsigned height = 8,
                               const ChartOptions& options = {});

}  // namespace tq
