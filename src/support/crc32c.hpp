// CRC-32C (Castagnoli), the per-block checksum of TQTR v2.1.
//
// The Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78) is the one
// with hardware support on x86 (SSE4.2 `crc32`), which keeps integrity
// checking essentially free on the streaming decode path; a slicing-by-8
// table implementation covers every other host. Same parameterisation as
// iSCSI/RFC 3720: init 0xffffffff, reflected, final xor 0xffffffff.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tq {

/// Checksum `size` bytes. Pass a previous result as `seed` to chain
/// non-contiguous regions: crc32c(b, nb, crc32c(a, na)).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0) noexcept;

/// True when the SSE4.2 hardware path is in use (exposed for the bench).
bool crc32c_hardware() noexcept;

/// Checksum via the slicing-by-8 software path regardless of hardware
/// support — the test seam proving both implementations agree. Same
/// parameterisation and chaining contract as crc32c().
std::uint32_t crc32c_software(const void* data, std::size_t size,
                              std::uint32_t seed = 0) noexcept;

}  // namespace tq
