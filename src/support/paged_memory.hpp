// Sparse paged byte-addressable memory.
//
// The guest address space is 64-bit but only a few dozen megabytes are ever
// touched, so storage is a hash map from page number to a fixed 4 KiB page.
// Pages materialise zero-filled on first write; reads of untouched memory
// return zeros (like an OS zero page) so that tools can replay traces
// without caring about allocation order.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace tq {

/// Sparse 64-bit byte-addressable memory backed by 4 KiB pages.
///
/// All multi-byte accessors are little-endian and may straddle page
/// boundaries. The class is movable but not copyable (pages can be large).
class PagedMemory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;
  static constexpr std::uint64_t kOffsetMask = kPageSize - 1;

  PagedMemory() = default;
  PagedMemory(const PagedMemory&) = delete;
  PagedMemory& operator=(const PagedMemory&) = delete;
  PagedMemory(PagedMemory&&) noexcept = default;
  PagedMemory& operator=(PagedMemory&&) noexcept = default;

  /// Read `out.size()` bytes starting at `addr`. Untouched memory reads as 0.
  void read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Write `in.size()` bytes starting at `addr`, materialising pages as needed.
  void write(std::uint64_t addr, std::span<const std::uint8_t> in);

  /// Typed little-endian accessors used by the VM.
  std::uint64_t load(std::uint64_t addr, unsigned size_bytes) const;
  void store(std::uint64_t addr, std::uint64_t value, unsigned size_bytes);
  double load_f64(std::uint64_t addr) const;
  void store_f64(std::uint64_t addr, double value);

  /// Number of resident (materialised) pages.
  std::size_t resident_pages() const noexcept { return pages_.size(); }

  /// Total resident bytes (pages * page size).
  std::size_t resident_bytes() const noexcept { return pages_.size() * kPageSize; }

  /// Drop every page, returning the memory to the all-zero state.
  void clear() noexcept { pages_.clear(); }

 private:
  struct Page {
    std::uint8_t bytes[kPageSize];
  };

  const Page* find_page(std::uint64_t page_no) const noexcept {
    auto it = pages_.find(page_no);
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page& touch_page(std::uint64_t page_no);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace tq
