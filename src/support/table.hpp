// Plain-text table rendering for the paper-table reproductions.
//
// Every bench binary prints its table both as aligned ASCII (for humans) and
// as CSV (for scripting); TextTable produces both from one cell buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tq {

/// Column alignment within an ASCII rendering.
enum class Align { kLeft, kRight };

/// A rectangular table of string cells with a header row.
class TextTable {
 public:
  /// Construct with column headers; alignment defaults to left for the first
  /// column and right for the rest (the usual name-then-numbers layout).
  explicit TextTable(std::vector<std::string> headers);

  /// Override alignment per column.
  void set_align(std::size_t column, Align align);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Render with padded columns, a header underline, and `indent` leading
  /// spaces on every line.
  std::string to_ascii(unsigned indent = 0) const;

  /// Render as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by reports.
std::string format_fixed(double value, int decimals);
std::string format_bytes(std::uint64_t bytes);
std::string format_count(std::uint64_t value);  // thousands separators
std::string format_percent(double fraction, int decimals = 2);

}  // namespace tq
