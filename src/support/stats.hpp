// Streaming statistics used by the bandwidth analyses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace tq {

/// Numerically stable running statistics (Welford) over a stream of doubles.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const noexcept {
    return count_ == 0 ? 0.0 : max_;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucket histogram for non-negative integer samples
/// (e.g. access sizes, slice byte counts). Bucket b holds samples in
/// [2^b, 2^(b+1)), with bucket 0 holding {0, 1}.
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept {
    unsigned bucket = 0;
    while (value > 1 && bucket + 1 < kBuckets) {
      value >>= 1;
      ++bucket;
    }
    ++buckets_[bucket];
    ++total_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(unsigned b) const noexcept {
    return b < kBuckets ? buckets_[b] : 0;
  }
  static constexpr unsigned kBuckets = 48;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Quantile helper over a materialised sample vector (sorts a copy).
double quantile(std::vector<double> samples, double q);

}  // namespace tq
