#include "support/stats.hpp"

#include "support/check.hpp"

namespace tq {

double quantile(std::vector<double> samples, double q) {
  TQUAD_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace tq
