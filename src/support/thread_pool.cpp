#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace tq {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  TQUAD_CHECK(static_cast<bool>(task), "empty task submitted");
  {
    std::lock_guard lock(mutex_);
    TQUAD_CHECK(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_blocks(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t, unsigned)>& body) {
  if (begin >= end) return;
  const std::uint64_t total = end - begin;
  const unsigned blocks =
      static_cast<unsigned>(std::min<std::uint64_t>(pool.size(), total));
  const std::uint64_t per_block = total / blocks;
  const std::uint64_t remainder = total % blocks;
  std::uint64_t cursor = begin;
  for (unsigned b = 0; b < blocks; ++b) {
    const std::uint64_t block_size = per_block + (b < remainder ? 1 : 0);
    const std::uint64_t block_begin = cursor;
    const std::uint64_t block_end = cursor + block_size;
    cursor = block_end;
    pool.submit([&body, block_begin, block_end, b] { body(block_begin, block_end, b); });
  }
  pool.wait_idle();
}

}  // namespace tq
