// Fixed-size worker pool for the offline (trace-replay) analyses.
//
// The online profiling path is inherently sequential — the guest retires one
// instruction at a time — but offline aggregation over a recorded trace
// shards cleanly. Work is submitted as tasks; parallel_for_blocks() splits an
// index range into contiguous blocks (one per worker) so per-thread
// accumulators never contend (CP.31: pass data by value / avoid sharing).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tq {

/// A minimal fixed-size thread pool. Destruction joins all workers after
/// draining the queue. Tasks must not throw (they run under noexcept
/// workers); wrap fallible work and capture errors by hand.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. Tasks may run on any worker in any order.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::uint64_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Split [begin, end) into at most `pool.size()` contiguous blocks and run
/// `body(block_begin, block_end, block_index)` on the pool, blocking until
/// all blocks complete. With an empty range this is a no-op.
void parallel_for_blocks(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                         const std::function<void(std::uint64_t, std::uint64_t, unsigned)>& body);

}  // namespace tq
