// Minimal command-line parser for the example/bench drivers.
//
// Mirrors the knob style of Pin tools (`-slice 5000 -ignore_stack ...`):
// options are declared up front with defaults and help text, then parsed
// from argv. Unknown options raise tq::Error with a usage string.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tq {

/// Declarative argv parser. Declare options, call parse(), then query.
class CliParser {
 public:
  explicit CliParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Declare options. `name` is used as `-name value` (or `-name` for bools,
  /// which toggle to true). Declaring twice is an invariant violation.
  void add_flag(const std::string& name, bool default_value, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);

  /// Parse argv (argv[0] is skipped). Throws tq::Error on unknown/ill-typed
  /// options. Non-option arguments are collected into positional().
  void parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  const std::string& str(const std::string& name) const;
  double real(const std::string& name) const;
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Render a usage/help string listing every declared option.
  std::string help() const;

 private:
  enum class Kind { kFlag, kInt, kString, kDouble };
  struct Option {
    Kind kind = Kind::kFlag;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    std::string string_value;
    double double_value = 0.0;
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace tq
