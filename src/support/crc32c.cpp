#include "support/crc32c.hpp"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define TQUAD_CRC32C_X86 1
#endif

namespace tq {
namespace {

// ---------------------------------------------------------------------------
// Software path: slicing-by-8 (processes 8 bytes per iteration with eight
// 256-entry tables; ~1 GB/s class, used only when SSE4.2 is absent).

struct Tables {
  std::uint32_t t[8][256];

  Tables() noexcept {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int slice = 1; slice < 8; ++slice) {
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xff];
      }
    }
  }
};

std::uint32_t crc32c_sw(const std::uint8_t* p, std::size_t n,
                        std::uint32_t crc) noexcept {
  static const Tables tables;
  const auto& t = tables.t;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
          t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
          t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
          t[1][(word >> 48) & 0xff] ^ t[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

// ---------------------------------------------------------------------------
// Hardware path: the SSE4.2 crc32 instruction. A single crc32q chain is
// latency-bound (8 bytes per 3 cycles), so the bulk loop runs three
// independent chains over adjacent 1 KiB lanes and merges them with a
// table-driven "advance the CRC past 1 KiB of zeros" operator — CRC is
// linear over GF(2), so the operator is a 32x32 bit matrix folded into four
// 256-entry lookup tables. ~3x the single-chain throughput on wide cores.
// The target attribute scopes -msse4.2 to these functions only; callers must
// gate on the cpuid check below.

#ifdef TQUAD_CRC32C_X86
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw_chain(
    const std::uint8_t* p, std::size_t n, std::uint32_t crc) noexcept {
#if defined(__x86_64__)
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
#endif
  while (n--) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

#if defined(__x86_64__)
constexpr std::size_t kLane = 1024;  // bytes per interleaved chain

struct LaneShiftTables {
  std::uint32_t t[4][256];

  LaneShiftTables() noexcept {
    // basis[i]: a CRC state with only bit i set, advanced past kLane zero
    // bytes. Any state's advance is then the XOR of the basis vectors of its
    // set bits, folded bytewise into four tables.
    const std::uint8_t zeros[kLane] = {};
    std::uint32_t basis[32];
    for (int i = 0; i < 32; ++i) {
      basis[i] = crc32c_hw_chain(zeros, kLane, 1u << i);
    }
    for (int b = 0; b < 4; ++b) {
      for (int v = 0; v < 256; ++v) {
        std::uint32_t acc = 0;
        for (int j = 0; j < 8; ++j) {
          if (v & (1 << j)) acc ^= basis[8 * b + j];
        }
        t[b][v] = acc;
      }
    }
  }

  std::uint32_t shift(std::uint32_t crc) const noexcept {
    return t[0][crc & 0xff] ^ t[1][(crc >> 8) & 0xff] ^
           t[2][(crc >> 16) & 0xff] ^ t[3][crc >> 24];
  }
};
#endif

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const std::uint8_t* p, std::size_t n, std::uint32_t crc) noexcept {
#if defined(__x86_64__)
  if (n >= 3 * kLane) {
    // Safe magic-static: the constructor only issues kLane-sized chain
    // calls, which never re-enter this branch.
    static const LaneShiftTables tables;
    while (n >= 3 * kLane) {
      std::uint64_t c0 = crc;
      std::uint64_t c1 = 0;
      std::uint64_t c2 = 0;
      for (std::size_t i = 0; i < kLane; i += 8) {
        std::uint64_t w0, w1, w2;
        std::memcpy(&w0, p + i, 8);
        std::memcpy(&w1, p + kLane + i, 8);
        std::memcpy(&w2, p + 2 * kLane + i, 8);
        c0 = _mm_crc32_u64(c0, w0);
        c1 = _mm_crc32_u64(c1, w1);
        c2 = _mm_crc32_u64(c2, w2);
      }
      // crc(A|B|C) = shift(shift(crcA) ^ crcB) ^ crcC, shift = +kLane zeros.
      crc = tables.shift(tables.shift(static_cast<std::uint32_t>(c0)) ^
                         static_cast<std::uint32_t>(c1)) ^
            static_cast<std::uint32_t>(c2);
      p += 3 * kLane;
      n -= 3 * kLane;
    }
  }
#endif
  return crc32c_hw_chain(p, n, crc);
}

bool detect_hardware() noexcept { return __builtin_cpu_supports("sse4.2"); }
#else
bool detect_hardware() noexcept { return false; }
#endif

const bool kUseHardware = detect_hardware();

}  // namespace

bool crc32c_hardware() noexcept { return kUseHardware; }

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
#ifdef TQUAD_CRC32C_X86
  if (kUseHardware) return ~crc32c_hw(p, size, crc);
#endif
  return ~crc32c_sw(p, size, crc);
}

std::uint32_t crc32c_software(const void* data, std::size_t size,
                              std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  return ~crc32c_sw(p, size, ~seed);
}

}  // namespace tq
