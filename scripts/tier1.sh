#!/bin/sh
# Tier-1 gate: the standard build + full test suite, then the trace/codec
# surface again under ASan+UBSan (the decoders chew untrusted bytes, so they
# get the sanitizer treatment on every run), then the codec bench, which
# asserts the v2-vs-v1 compression floor.
# Usage: scripts/tier1.sh   (from the repository root)
set -e

# 1. Standard build, all tests.
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

# 2. ASan+UBSan on the trace stack and the session layer: codec
#    round-trips, differential sweeps (including single-pass-vs-standalone
#    and replay-vs-live equivalence), the decoder fuzzers and the v2.1
#    corruption/salvage suite (the tests most likely to walk off a buffer),
#    plus the fault-injection differential harness.
#    The workload-zoo suites ride along so every registered memory shape
#    (hash-join scatter, phase-sharp buffers, ...) is exercised under the
#    sanitizers too, and the engine differential suite runs the compiled
#    (fused-op) engine against the reference interpreter — including the
#    trap-at-N prefix contract — with ASan watching the lowered arrays.
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)" --target \
    test_trace test_trace_v2_codec test_trace_offline_differential \
    test_fuzz_decoders test_trace_salvage test_fault_injection \
    test_session test_session_differential test_session_replay \
    test_session_pipeline \
    test_support_metrics test_workload_zoo test_engine_differential
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R '^(test_trace|test_trace_v2_codec|test_trace_offline_differential|test_fuzz_decoders|test_trace_salvage|test_fault_injection|test_session|test_session_differential|test_session_replay|test_session_pipeline|test_support_metrics|test_workload_zoo|test_engine_differential)$'

# 2b. Forced-adaptive stress under ASan: replay the whole pipeline parity
#     suite with the batch controller pinned to its most allocation-churny
#     schedule (grow doubles every lane's buffers; the freelist and the
#     recycled-buffer clears get the sanitizer treatment).
TQ_PIPELINE_FORCE_ADAPTIVE=grow \
    ./build-asan/tests/test_session_pipeline > /dev/null

# 3. ThreadSanitizer on everything that spawns threads: the parallel
#    analysis pipeline (rings, doorbells, shard merge, drain barrier,
#    push-racing-close shutdown), the thread pool / SPSC ring primitives,
#    the metrics thread-sink fold, parallel trace replay, and the
#    fault-injection harness whose trap path exercises the pipeline's
#    abort/drain sequence. The engine differential suite rides along for
#    its compiled-engine-feeding-the-parallel-pipeline cases.
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target \
    test_support_thread_pool test_support_metrics test_session \
    test_session_differential test_session_replay test_session_pipeline \
    test_trace test_fault_injection test_support_crc32c \
    test_workload_zoo test_trace_offline_differential test_engine_differential
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R '^(test_support_thread_pool|test_support_metrics|test_session|test_session_differential|test_session_replay|test_session_pipeline|test_trace|test_fault_injection|test_support_crc32c|test_workload_zoo|test_trace_offline_differential|test_engine_differential)$'

# 3b. Forced-adaptive stress under TSan: the cycle schedule walks every lane
#     through grow and shrink transitions while workers drain concurrently —
#     the controller's resize decisions must stay data-race-free against the
#     worker-side recycle path.
TQ_PIPELINE_FORCE_ADAPTIVE=cycle \
    ./build-tsan/tests/test_session_pipeline > /dev/null

# 4. Farm smoke under ASan: the supervisor's fork/exec/waitpid plumbing and
#    the sidecar/manifest codecs run sanitized end to end — a two-worker
#    farm over zoo traces, one of them deliberately corrupted, must
#    quarantine the poison member (exit 3) and still merge the healthy ones.
cmake --build --preset asan-ubsan -j "$(nproc)" --target \
    tquad_farm tquad_cli zoo_gen test_farm_codec
ctest --test-dir build-asan --output-on-failure -R '^test_farm_codec$'
FARM_WORK=build-asan/farm_smoke_work
rm -rf "$FARM_WORK"
mkdir -p "$FARM_WORK"
./build-asan/tools/zoo_gen -workload phased -image "$FARM_WORK/phased.tqim" > /dev/null
./build-asan/tools/tquad_cli -image "$FARM_WORK/phased.tqim" -slice 2000 \
    -trace "$FARM_WORK/a.tqtr" > /dev/null
cp "$FARM_WORK/a.tqtr" "$FARM_WORK/b.tqtr"
printf 'XXXXXXXX' | dd of="$FARM_WORK/b.tqtr" bs=1 seek=0 conv=notrunc 2> /dev/null
farm_status=0
./build-asan/tools/tquad_farm -traces "$FARM_WORK/a.tqtr,$FARM_WORK/b.tqtr" \
    -state "$FARM_WORK/state" -slice 2000 -workers 2 -max-attempts 2 \
    -backoff-ms 10 -out "$FARM_WORK/fleet.out" > "$FARM_WORK/farm.stdout" \
    || farm_status=$?
[ "$farm_status" -eq 3 ] || {
  echo "tier1: farm smoke expected exit 3 (quarantine), got $farm_status" >&2
  exit 1
}
grep -q "1 quarantined" "$FARM_WORK/farm.stdout"
grep -q "fleet bandwidth" "$FARM_WORK/fleet.out"

# 5. Codec bench: fails if v2 is not >= 4x smaller than v1 on stream or if
#    v2.1 per-block CRC verification costs >= 5% on streaming decode.
./build/bench/bench_trace_codec

# 6. Workload-zoo signature bench: gates every registered workload's
#    measured memory signature against its declared shape and writes
#    BENCH_zoo.json; fails on any gate violation.
./build/bench/bench_workload_signatures

echo "tier1: OK"
