// Section V-A reproduction: instrumentation overhead.
//
// The paper reports a 37.2x-68.95x slowdown of the instrumented hArtes wfs
// versus native execution, depending on the time-slice interval and the
// stack-area option. Our equivalents:
//   * "native execution"      -> the golden model (compiled C++);
//   * "instrumented execution"-> the VM running the guest under tQUAD/QUAD.
// The VM itself contributes a baseline interpretation cost, so the bench
// reports both the tool-over-VM factor (what instrumentation adds) and the
// tool-over-native factor (the paper's measurement).
//
// google-benchmark drives the steady-state measurements on the tiny
// configuration; a one-shot standard-configuration run prints the headline
// slowdown table.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "support/metrics.hpp"
#include "tquad/tquad_tool.hpp"
#include "vm/compiled.hpp"
#include "wfs/runner.hpp"
#include "workloads/registry.hpp"

#include "bench_env.hpp"
#include "paper_reference.hpp"

namespace {

using namespace tq;

void BM_GoldenModel(benchmark::State& state) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  const wfs::WavData input = wfs::make_test_signal(cfg.input_samples());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfs::run_golden(cfg, input));
  }
}
BENCHMARK(BM_GoldenModel)->Unit(benchmark::kMillisecond);

void BM_VmNative(benchmark::State& state) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  std::uint64_t retired = 0;
  for (auto _ : state) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    vm::Machine machine(run.artifacts.program, run.host);
    retired = machine.run().retired;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(retired), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_VmNative)->Unit(benchmark::kMillisecond);

void BM_VmTquad(benchmark::State& state) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  const auto slice = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t retired = 0;
  for (auto _ : state) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = slice});
    retired = engine.run().retired;
    benchmark::DoNotOptimize(tool.total_retired());
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(retired), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_VmTquad)->Arg(5000)->Arg(100000)->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_VmQuad(benchmark::State& state) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  for (auto _ : state) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    quad::QuadTool tool(engine);
    engine.run();
    benchmark::DoNotOptimize(tool.kernel_count());
  }
}
BENCHMARK(BM_VmQuad)->Unit(benchmark::kMillisecond);

void BM_VmGprof(benchmark::State& state) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  for (auto _ : state) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    gprof::GprofTool tool(engine, {});
    engine.run();
    benchmark::DoNotOptimize(tool.total_retired());
  }
}
BENCHMARK(BM_VmGprof)->Unit(benchmark::kMillisecond);

// All three profilers sharing one execution through a ProfileSession — the
// single-pass the paper's methodology lacked (it ran each tool separately).
void BM_VmSessionAll(benchmark::State& state) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  for (auto _ : state) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    session::ProfileSession profile(run.artifacts.program);
    tquad::TQuadTool tquad_tool(run.artifacts.program,
                                tquad::Options{.slice_interval = 5000});
    quad::QuadTool quad_tool(run.artifacts.program);
    gprof::GprofTool gprof_tool(run.artifacts.program, {});
    profile.add_consumer(tquad_tool);
    profile.add_consumer(quad_tool);
    profile.add_consumer(gprof_tool);
    benchmark::DoNotOptimize(profile.run_live(run.host));
  }
}
BENCHMARK(BM_VmSessionAll)->Unit(benchmark::kMillisecond);

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void print_headline_slowdowns() {
  const wfs::WfsConfig cfg = wfs::WfsConfig::standard();
  const wfs::WavData input = wfs::make_test_signal(cfg.input_samples());

  const double golden_s = time_once([&] {
    benchmark::DoNotOptimize(wfs::run_golden(cfg, input));
  });
  std::uint64_t retired = 0;
  const double native_s = time_once([&] {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    vm::Machine machine(run.artifacts.program, run.host);
    retired = machine.run().retired;
  });
  const double tquad_fine_s = time_once([&] {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 5000});
    engine.run();
  });
  const double tquad_coarse_s = time_once([&] {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 10'000'000});
    engine.run();
  });
  const double quad_s = time_once([&] {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    quad::QuadTool tool(engine);
    engine.run();
  });

  std::printf("\n== headline slowdowns (standard configuration, %s instructions) ==\n",
              format_count(retired).c_str());
  std::printf("%-28s %10s %18s %18s\n", "configuration", "seconds", "vs native (C++)",
              "vs plain VM");
  auto row = [&](const char* name, double seconds) {
    std::printf("%-28s %10.3f %17.1fx %17.1fx\n", name, seconds, seconds / golden_s,
                seconds / native_s);
  };
  row("golden model (native C++)", golden_s);
  row("VM, uninstrumented", native_s);
  row("VM + tQUAD, slice 5e3", tquad_fine_s);
  row("VM + tQUAD, slice 1e7", tquad_coarse_s);
  row("VM + QUAD", quad_s);
  std::printf("\npaper: instrumented vs native slowdown %.1fx-%.1fx depending on the\n"
              "slice interval and the stack option; the 'vs native' column is the\n"
              "comparable measurement here.\n",
              tq::bench::kPaperSlowdownLow, tq::bench::kPaperSlowdownHigh);
}

/// One-shot single-pass-vs-three-pass comparison on the standard
/// configuration, with a machine-readable BENCH_session.json for CI.
/// Returns false if the combined session fails the 1.8x speedup floor.
bool print_session_speedup() {
  const wfs::WfsConfig cfg = wfs::WfsConfig::standard();
  const tquad::Options tquad_options{.slice_interval = 5000};
  // Best of a few repetitions per variant: the comparison is between two
  // deterministic single-threaded runs, so min is the noise-robust statistic.
  constexpr int kReps = 3;

  std::uint64_t retired = 0;
  double three_pass_s = 0.0;
  double single_pass_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double three = time_once([&] {
      {
        wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
        pin::Engine engine(run.artifacts.program, run.host);
        tquad::TQuadTool tool(engine, tquad_options);
        retired = engine.run().retired;
      }
      {
        wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
        pin::Engine engine(run.artifacts.program, run.host);
        quad::QuadTool tool(engine);
        engine.run();
      }
      {
        wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
        pin::Engine engine(run.artifacts.program, run.host);
        gprof::GprofTool tool(engine, {});
        engine.run();
      }
    });

    const double single = time_once([&] {
      wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
      session::ProfileSession profile(run.artifacts.program);
      tquad::TQuadTool tquad_tool(run.artifacts.program, tquad_options);
      quad::QuadTool quad_tool(run.artifacts.program);
      gprof::GprofTool gprof_tool(run.artifacts.program, {});
      profile.add_consumer(tquad_tool);
      profile.add_consumer(quad_tool);
      profile.add_consumer(gprof_tool);
      profile.run_live(run.host);
    });

    if (rep == 0 || three < three_pass_s) three_pass_s = three;
    if (rep == 0 || single < single_pass_s) single_pass_s = single;
  }

  const double speedup = three_pass_s / single_pass_s;
  std::printf("\n== single-pass session vs separate runs (standard configuration) ==\n");
  std::printf("%-44s %10.3f s\n", "tquad + quad + gprof, three executions",
              three_pass_s);
  std::printf("%-44s %10.3f s\n", "tquad + quad + gprof, one ProfileSession",
              single_pass_s);
  std::printf("%-44s %9.2fx  (floor 1.80x)\n", "speedup", speedup);

  std::FILE* json = std::fopen("BENCH_session.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    tq::bench::write_env_json_fields(json);
    std::fprintf(json,
                 "  \"workload\": \"wfs standard\",\n"
                 "  \"retired_instructions\": %llu,\n"
                 "  \"three_pass_seconds\": %.6f,\n"
                 "  \"single_pass_seconds\": %.6f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"speedup_floor\": 1.8\n"
                 "}\n",
                 static_cast<unsigned long long>(retired), three_pass_s,
                 single_pass_s, speedup);
    std::fclose(json);
    std::printf("wrote BENCH_session.json\n");
  }
  if (speedup < 1.8) {
    std::fprintf(stderr, "session speedup %.2fx below the 1.80x floor\n", speedup);
    return false;
  }
  return true;
}

/// One-shot serial-vs-parallel pipeline comparison across the whole
/// workload zoo at bench scale, with a machine-readable BENCH_pipeline.json
/// for CI.
///
/// Per workload: best-of-kReps serial vs `-pipeline parallel:4` minima with
/// the measurement order alternating every rep (so clock/load drift over
/// the window biases both variants equally instead of always penalising
/// whichever runs second). The gate requires parallel:4 >= 1.2x serial on
/// at least (zoo - 2) workloads — the pipeline must win across memory
/// shapes, not just on one streaming-friendly case.
///
/// The floor is enforced only when the machine actually has >= 4 hardware
/// threads: on smaller hosts (CI containers are often single-core) the
/// parallel run degenerates into context-switched serial execution plus
/// ring traffic, and the gate would measure the scheduler, not the
/// pipeline. A skip is never silent: the JSON records
/// `"gate": "skipped:hw_threads<4"` and the skip is printed to stderr.
bool print_pipeline_speedup() {
  const tquad::Options tquad_options{.slice_interval = 5000};
  constexpr int kReps = 3;
  constexpr double kFloor = 1.2;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool gate_applicable = cores >= 4;

  const auto run_zoo_session = [&](const workloads::Entry& entry,
                                   const session::PipelineOptions& pipeline) {
    // Workload construction stays outside the timed region: the measurement
    // is the profiling run, exactly what a -pipeline switch changes.
    workloads::Instance instance = entry.build_bench();
    session::SessionConfig config;
    config.pipeline = pipeline;
    return time_once([&] {
      session::ProfileSession profile(instance.program, config);
      tquad::TQuadTool tquad_tool(instance.program, tquad_options);
      quad::QuadTool quad_tool(instance.program);
      gprof::GprofTool gprof_tool(instance.program, {});
      profile.add_consumer(tquad_tool);
      profile.add_consumer(quad_tool);
      profile.add_consumer(gprof_tool);
      benchmark::DoNotOptimize(profile.run_live(instance.host));
    });
  };
  session::PipelineOptions par4;
  par4.mode = session::PipelineMode::kParallel;
  par4.workers = 4;

  struct Row {
    std::string name;
    double serial_s = 0.0;
    double par4_s = 0.0;
    double speedup() const { return serial_s / par4_s; }
  };
  std::vector<Row> rows;
  const auto& zoo = workloads::registry();
  rows.reserve(zoo.size());
  for (const workloads::Entry& entry : zoo) {
    Row row;
    row.name = entry.name;
    for (int rep = 0; rep < kReps; ++rep) {
      double serial, par;
      if (rep % 2 == 0) {
        serial = run_zoo_session(entry, {});
        par = run_zoo_session(entry, par4);
      } else {
        par = run_zoo_session(entry, par4);
        serial = run_zoo_session(entry, {});
      }
      if (rep == 0 || serial < row.serial_s) row.serial_s = serial;
      if (rep == 0 || par < row.par4_s) row.par4_s = par;
    }
    rows.push_back(row);
  }

  std::size_t winners = 0;
  for (const Row& row : rows) {
    if (row.speedup() >= kFloor) ++winners;
  }
  const std::size_t needed = zoo.size() > 2 ? zoo.size() - 2 : zoo.size();
  const char* gate = gate_applicable ? "enforced" : "skipped:hw_threads<4";

  std::printf("\n== parallel pipeline vs serial dispatch (zoo at bench scale, "
              "%u hardware threads) ==\n", cores);
  std::printf("%-14s %12s %14s %10s\n", "workload", "serial (s)",
              "parallel:4 (s)", "speedup");
  for (const Row& row : rows) {
    std::printf("%-14s %12.3f %14.3f %9.2fx%s\n", row.name.c_str(),
                row.serial_s, row.par4_s, row.speedup(),
                row.speedup() >= kFloor ? "" : "  (below floor)");
  }
  std::printf("%-44s %zu of %zu >= %.2fx (need %zu; gate %s)\n",
              "parallel:4 floor", winners, rows.size(), kFloor, needed, gate);
  if (!gate_applicable) {
    std::fprintf(stderr,
                 "pipeline gate skipped: %u hardware threads < 4, parallel:4 "
                 "would measure the scheduler\n",
                 cores);
  }

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    tq::bench::write_env_json_fields(json);
    std::fprintf(json,
                 "  \"tools\": \"tquad+quad+gprof\",\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"speedup_floor\": %.2f,\n"
                 "  \"workloads_at_floor\": %zu,\n"
                 "  \"workloads_needed\": %zu,\n"
                 "  \"gate\": \"%s\",\n"
                 "  \"workloads\": [\n",
                 cores, kFloor, winners, needed, gate);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"serial_seconds\": %.6f, "
                   "\"parallel4_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   row.name.c_str(), row.serial_s, row.par4_s, row.speedup(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_pipeline.json\n");
  }
  if (gate_applicable && winners < needed) {
    std::fprintf(stderr,
                 "parallel:4 at the %.2fx floor on only %zu of %zu zoo "
                 "workloads (need %zu)\n",
                 kFloor, winners, rows.size(), needed);
    return false;
  }
  return true;
}

/// One-shot metrics-overhead measurement, with BENCH_metrics.json for CI.
///
/// The self-observability contract: enabling -metrics must cost < 2% wall
/// time, because the hot path only bumps plain always-on counters — the
/// registry is touched once, after the run. Best-of-N minima keep the gate
/// noise-robust on loaded CI hosts.
bool print_metrics_overhead() {
  const wfs::WfsConfig cfg = wfs::WfsConfig::standard();
  const tquad::Options tquad_options{.slice_interval = 5000};
  constexpr int kReps = 5;
  constexpr double kCeiling = 0.02;  // 2%

  const auto run_session = [&](metrics::Registry* registry) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    session::SessionConfig config;
    config.metrics = registry;
    session::ProfileSession profile(run.artifacts.program, config);
    tquad::TQuadTool tquad_tool(run.artifacts.program, tquad_options);
    quad::QuadTool quad_tool(run.artifacts.program);
    gprof::GprofTool gprof_tool(run.artifacts.program, {});
    profile.add_consumer(tquad_tool);
    profile.add_consumer(quad_tool);
    profile.add_consumer(gprof_tool);
    profile.run_live(run.host);
    if (registry != nullptr) {
      quad_tool.publish_metrics(*registry);
      benchmark::DoNotOptimize(registry->render_json());
    }
  };

  double plain_s = 0.0;
  double metered_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    // Alternate the order each rep: clock-frequency / load drift over the
    // measurement window then biases both variants equally instead of
    // always penalising whichever runs second.
    const auto measure_plain = [&] { return time_once([&] { run_session(nullptr); }); };
    const auto measure_metered = [&] {
      return time_once([&] {
        metrics::Registry registry;
        run_session(&registry);
      });
    };
    double plain, metered;
    if (rep % 2 == 0) {
      plain = measure_plain();
      metered = measure_metered();
    } else {
      metered = measure_metered();
      plain = measure_plain();
    }
    if (rep == 0 || plain < plain_s) plain_s = plain;
    if (rep == 0 || metered < metered_s) metered_s = metered;
  }

  const double overhead = metered_s / plain_s - 1.0;
  std::printf("\n== metrics-enabled overhead (standard configuration) ==\n");
  std::printf("%-44s %10.3f s\n", "session, metrics off", plain_s);
  std::printf("%-44s %10.3f s\n", "session, metrics on (incl. rendering)",
              metered_s);
  std::printf("%-44s %9.2f%%  (ceiling %.0f%%)\n", "overhead", overhead * 100.0,
              kCeiling * 100.0);

  std::FILE* json = std::fopen("BENCH_metrics.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    tq::bench::write_env_json_fields(json);
    std::fprintf(json,
                 "  \"workload\": \"wfs standard\",\n"
                 "  \"tools\": \"tquad+quad+gprof\",\n"
                 "  \"plain_seconds\": %.6f,\n"
                 "  \"metrics_seconds\": %.6f,\n"
                 "  \"overhead_fraction\": %.4f,\n"
                 "  \"overhead_ceiling\": %.2f\n"
                 "}\n",
                 plain_s, metered_s, overhead, kCeiling);
    std::fclose(json);
    std::printf("wrote BENCH_metrics.json\n");
  }
  if (overhead >= kCeiling) {
    std::fprintf(stderr, "metrics overhead %.2f%% at or above the %.0f%% ceiling\n",
                 overhead * 100.0, kCeiling * 100.0);
    return false;
  }
  return true;
}

/// One-shot compiled-vs-interpreter comparison, with BENCH_jit.json for CI.
///
/// Two measurements on the standard wfs configuration:
///   * end-to-end: a full tQUAD profiling session (slice 5000) — guest
///     execution, attribution, and tool accounting included. This is the
///     gated number (floor 2.5x, target 3x): the compiled engine removes
///     the per-instruction trampolines and batches tick emission, but still
///     pays the shared per-access event cost.
///   * bare: the uninstrumented VM, where fused-op threaded dispatch runs
///     free of any event traffic — the engine's raw dispatch win.
bool print_jit_speedup() {
  const wfs::WfsConfig cfg = wfs::WfsConfig::standard();
  const tquad::Options tquad_options{.slice_interval = 5000};
  constexpr int kReps = 3;
  constexpr double kFloor = 2.5;
  constexpr double kTarget = 3.0;

  // Workload construction (program build + host wiring) is hoisted out of
  // every timed region: the measurement is the profiling run itself —
  // lowering/instrumentation, guest execution, attribution, and tool
  // accounting — exactly what an -engine switch changes for a loaded image.
  const auto run_session = [&](vm::EngineKind kind) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    session::SessionConfig config;
    config.engine = kind;
    return time_once([&] {
      session::ProfileSession profile(run.artifacts.program, config);
      tquad::TQuadTool tool(run.artifacts.program, tquad_options);
      profile.add_consumer(tool);
      benchmark::DoNotOptimize(profile.run_live(run.host));
    });
  };

  std::uint64_t retired = 0;
  double interp_s = 0.0;
  double compiled_s = 0.0;
  double bare_interp_s = 0.0;
  double bare_compiled_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double interp = run_session(vm::EngineKind::kInterp);
    const double compiled = run_session(vm::EngineKind::kCompiled);
    const double bare_interp = [&] {
      wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
      return time_once([&] {
        vm::Machine machine(run.artifacts.program, run.host);
        retired = machine.run().retired;
      });
    }();
    const double bare_compiled = [&] {
      wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
      return time_once([&] {
        vm::CompiledMachine machine(run.artifacts.program, run.host);
        benchmark::DoNotOptimize(machine.run());
      });
    }();
    if (rep == 0 || interp < interp_s) interp_s = interp;
    if (rep == 0 || compiled < compiled_s) compiled_s = compiled;
    if (rep == 0 || bare_interp < bare_interp_s) bare_interp_s = bare_interp;
    if (rep == 0 || bare_compiled < bare_compiled_s) bare_compiled_s = bare_compiled;
  }

  const double speedup = interp_s / compiled_s;
  const double bare_speedup = bare_interp_s / bare_compiled_s;
  std::printf("\n== compiled engine vs interpreter (standard configuration, "
              "%s instructions) ==\n", format_count(retired).c_str());
  std::printf("%-44s %10.3f s  (%.1f Minstr/s)\n", "tQUAD session, -engine interp",
              interp_s, static_cast<double>(retired) / 1e6 / interp_s);
  std::printf("%-44s %10.3f s  (%.1f Minstr/s)\n", "tQUAD session, -engine compiled",
              compiled_s, static_cast<double>(retired) / 1e6 / compiled_s);
  std::printf("%-44s %9.2fx  (floor %.2fx, target %.2fx)\n", "end-to-end speedup",
              speedup, kFloor, kTarget);
  std::printf("%-44s %10.3f s\n", "bare VM, interpreter", bare_interp_s);
  std::printf("%-44s %10.3f s\n", "bare VM, compiled", bare_compiled_s);
  std::printf("%-44s %9.2fx\n", "bare dispatch speedup", bare_speedup);

  std::FILE* json = std::fopen("BENCH_jit.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    tq::bench::write_env_json_fields(json);
    std::fprintf(json,
                 "  \"workload\": \"wfs standard\",\n"
                 "  \"tools\": \"tquad\",\n"
                 "  \"retired_instructions\": %llu,\n"
                 "  \"interp_seconds\": %.6f,\n"
                 "  \"compiled_seconds\": %.6f,\n"
                 "  \"end_to_end_speedup\": %.3f,\n"
                 "  \"bare_interp_seconds\": %.6f,\n"
                 "  \"bare_compiled_seconds\": %.6f,\n"
                 "  \"bare_speedup\": %.3f,\n"
                 "  \"speedup_floor\": %.2f,\n"
                 "  \"speedup_target\": %.2f\n"
                 "}\n",
                 static_cast<unsigned long long>(retired), interp_s, compiled_s,
                 speedup, bare_interp_s, bare_compiled_s, bare_speedup, kFloor,
                 kTarget);
    std::fclose(json);
    std::printf("wrote BENCH_jit.json\n");
  }
  if (speedup < kFloor) {
    std::fprintf(stderr, "compiled-engine speedup %.2fx below the %.2fx floor\n",
                 speedup, kFloor);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_headline_slowdowns();
  const bool session_ok = print_session_speedup();
  const bool pipeline_ok = print_pipeline_speedup();
  const bool metrics_ok = print_metrics_overhead();
  const bool jit_ok = print_jit_speedup();
  return session_ok && pipeline_ok && metrics_ok && jit_ok ? 0 : 1;
}
