// Ablation: the task-clustering objective (the paper's future-work step).
//
// Sweeps the target cluster count and the resource cap over the wfs QUAD
// communication graph and reports the achieved cut (intra- vs inter-cluster
// bytes). The curve quantifies the partitioning tradeoff the DWB flow faces:
// fewer clusters keep more communication on-chip but concentrate more of
// the run in one task; resource caps push the cut the other way.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "minipin/minipin.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "wfs/runner.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("bench_ablation_cluster: clustering objective sweep");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }
  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  quad::QuadTool tool(engine);
  engine.run();

  std::uint64_t run_instr = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    run_instr += tool.instructions(k);
  }

  std::printf("== ablation: target cluster count (no resource cap) ==\n\n");
  TextTable by_count({"target clusters", "clusters formed", "intra bytes",
                      "inter bytes", "intra %"});
  for (std::size_t target : {12, 8, 6, 5, 4, 3, 2, 1}) {
    cluster::ClusterOptions options;
    options.target_clusters = target;
    const auto result = cluster::cluster_kernels(tool, options);
    by_count.add_row({std::to_string(target), std::to_string(result.clusters.size()),
                      format_count(result.intra_bytes),
                      format_count(result.inter_bytes),
                      format_percent(result.intra_fraction())});
  }
  std::fputs(by_count.to_ascii().c_str(), stdout);

  std::printf("\n== ablation: resource cap (target 5 clusters) ==\n\n");
  TextTable by_cap({"cap (% of run)", "clusters formed", "largest cluster (%)",
                    "intra %"});
  for (int cap_percent : {100, 60, 40, 25, 15}) {
    cluster::ClusterOptions options;
    options.target_clusters = 5;
    options.max_cluster_weight =
        cap_percent == 100 ? 0 : run_instr * static_cast<std::uint64_t>(cap_percent) / 100;
    const auto result = cluster::cluster_kernels(tool, options);
    std::uint64_t largest = 0;
    for (const auto& members : result.clusters) {
      std::uint64_t weight = 0;
      for (std::uint32_t k : members) weight += tool.instructions(k);
      largest = std::max(largest, weight);
    }
    by_cap.add_row(
        {std::to_string(cap_percent), std::to_string(result.clusters.size()),
         format_percent(static_cast<double>(largest) / static_cast<double>(run_instr)),
         format_percent(result.intra_fraction())});
  }
  std::fputs(by_cap.to_ascii().c_str(), stdout);
  std::printf(
      "\nreading: merging is monotone — inter-cluster bytes only fall as the\n"
      "target count drops; the resource cap trades cut quality for balanced\n"
      "tasks, exactly the tension the DWB mapper has to resolve.\n");
  return 0;
}
