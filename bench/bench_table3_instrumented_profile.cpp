// Table III reproduction: flat profile of the QUAD-instrumented application.
//
// The paper runs gprof on the Pin+QUAD+hArtes-wfs process: kernels that hit
// global memory pay the full analysis routine on every access, so their
// contribution balloons (AudioIo_setFrames 4% -> 11.2%, trend up-up) while
// stack-local kernels collapse (bitrev 8.2% -> 0.4%, down-down). We model
// the same measurement with QuadTool's cost model over the per-kernel access
// mix, then rank and classify trends against the baseline profile.
#include <cstdio>
#include <map>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "quad/instrumented_profile.hpp"
#include "quad/quad_tool.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "wfs/runner.hpp"

#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli(
      "bench_table3_instrumented_profile: regenerate the paper's Table III");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  cli.add_int("stub_cost", 3, "cost units per intercepted memory access");
  cli.add_int("trace_cost", 12, "cost units per traced (global) access");
  cli.add_int("byte_cost", 2, "cost units per traced byte");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();

  // Baseline profile (Table I basis) from an uninstrumented-cost run.
  wfs::WfsRun base_run = wfs::prepare_wfs_run(cfg);
  pin::Engine base_engine(base_run.artifacts.program, base_run.host);
  gprof::GprofTool base_tool(base_engine, {});
  base_engine.run();

  // QUAD run for the access mix.
  wfs::WfsRun quad_run = wfs::prepare_wfs_run(cfg);
  pin::Engine quad_engine(quad_run.artifacts.program, quad_run.host);
  quad::QuadTool quad_tool(quad_engine);
  quad_engine.run();

  quad::CostModel model;
  model.per_memory_stub = static_cast<std::uint64_t>(cli.integer("stub_cost"));
  model.per_global_trace = static_cast<std::uint64_t>(cli.integer("trace_cost"));
  model.per_global_byte = static_cast<std::uint64_t>(cli.integer("byte_cost"));

  // The paper's Table III covers its Table I top-ten kernels; use the same
  // kernel list with our measured baseline shares.
  std::vector<quad::BaseShare> base;
  const std::vector<gprof::FlatRow> base_rows = base_tool.flat_profile();
  for (const auto& paper_row : bench::paper_table3()) {
    for (const auto& row : base_rows) {
      if (row.name == paper_row.kernel) {
        base.push_back(quad::BaseShare{row.kernel, row.time_fraction});
        break;
      }
    }
  }
  const auto rows = quad::instrumented_profile(quad_tool, base, model);

  std::map<std::string, const bench::PaperInstrumentedRow*> paper;
  for (const auto& row : bench::paper_table3()) paper[row.kernel] = &row;

  TextTable table({"kernel", "base %", "instr %", "rank", "trend", "paper %",
                   "paper rank", "paper trend"});
  for (const auto& row : rows) {
    const auto it = paper.find(row.name);
    table.add_row({row.name, format_percent(row.base_fraction),
                   format_percent(row.instrumented_fraction),
                   std::to_string(row.rank), quad::trend_arrow(row.trend),
                   it == paper.end() ? "-" : format_fixed(it->second->percent_time, 2),
                   it == paper.end() ? "-" : std::to_string(it->second->rank),
                   it == paper.end() ? "-" : it->second->trend});
  }

  std::printf("== Table III: flat profile of the QUAD-instrumented run ==\n");
  std::printf("cost model: %llu/instr + %llu/mem-stub + %llu/global-trace + "
              "%llu/global-byte\n\n",
              static_cast<unsigned long long>(model.per_instruction),
              static_cast<unsigned long long>(model.per_memory_stub),
              static_cast<unsigned long long>(model.per_global_trace),
              static_cast<unsigned long long>(model.per_global_byte));
  std::fputs(table.to_ascii().c_str(), stdout);

  // Shape checks the paper highlights.
  auto find_row = [&](const char* name) -> const quad::InstrumentedRow* {
    for (const auto& row : rows) {
      if (row.name == name) return &row;
    }
    return nullptr;
  };
  std::printf("\nshape checks:\n");
  if (const auto* set_frames = find_row("AudioIo_setFrames")) {
    std::printf("  AudioIo_setFrames trend: %s (paper: ↑↑, 4%% -> 11.2%%)\n",
                quad::trend_arrow(set_frames->trend));
  }
  if (const auto* bitrev = find_row("bitrev")) {
    std::printf("  bitrev trend: %s (paper: ↓↓, 8.2%% -> 0.4%%)\n",
                quad::trend_arrow(bitrev->trend));
  }
  if (const auto* store = find_row("wav_store")) {
    std::printf("  wav_store stays rank %u (paper: rank 1, ↔)\n", store->rank);
  }
  return 0;
}
