// TQTR codec benchmark: v1 (flat 28-byte records) versus v2 (block-compressed,
// delta + varint) on the stream workload — the trace shape the paper's tool
// would produce when profiling a bandwidth-bound kernel.
//
// Reports bytes/event and the compression ratio (the PR's acceptance bar is
// v2 >= 4x smaller than v1 on this workload, enforced with TQUAD_CHECK),
// encode/decode throughput, and sequential-v1 versus block-parallel-v2
// offline aggregation time with a totals-equality cross-check.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/crc32c.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "vm/machine.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace tq;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

trace::Trace record_stream_trace(std::uint32_t elements, std::uint32_t iterations) {
  const workloads::StreamArtifacts stream = workloads::build_stream(elements, iterations);
  vm::HostEnv host;
  trace::TraceRecorder recorder(stream.program);
  vm::Machine machine(stream.program, host);
  machine.run(&recorder);
  return recorder.take();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_trace_codec: TQTR v1 vs v2 size and throughput");
  cli.add_int("elements", 4096, "stream vector length (f64 elements)");
  cli.add_int("iterations", 4, "stream benchmark repetitions");
  cli.add_int("slice", 5000, "slice interval for the aggregation timing");
  cli.add_int("threads", 4, "worker threads for v2 block-parallel aggregation");
  cli.add_int("block", trace::kDefaultBlockCapacity, "v2 block capacity (records)");
  try {
    cli.parse(argc, argv);
    const auto block = static_cast<std::uint32_t>(cli.integer("block"));
    const auto slice = static_cast<std::uint64_t>(cli.integer("slice"));

    const trace::Trace trace =
        record_stream_trace(static_cast<std::uint32_t>(cli.integer("elements")),
                            static_cast<std::uint32_t>(cli.integer("iterations")));
    const double events = static_cast<double>(trace.records.size());
    std::printf("stream trace: %s events, %s retired instructions\n\n",
                format_count(trace.records.size()).c_str(),
                format_count(trace.total_retired).c_str());

    // -- Size -------------------------------------------------------------
    auto start = Clock::now();
    const auto v1 = trace.serialize();
    const double v1_encode = seconds_since(start);
    start = Clock::now();
    const auto v2 = trace::serialize_v2(trace, block);
    const double v2_encode = seconds_since(start);

    start = Clock::now();
    const trace::Trace v1_back = trace::Trace::deserialize(v1);
    const double v1_decode = seconds_since(start);
    start = Clock::now();
    const trace::Trace v2_back = trace::Trace::deserialize(v2);
    const double v2_decode = seconds_since(start);
    TQUAD_CHECK(v1_back.records.size() == trace.records.size(), "v1 round trip");
    TQUAD_CHECK(v2_back.records.size() == trace.records.size(), "v2 round trip");

    const double ratio = static_cast<double>(v1.size()) / static_cast<double>(v2.size());
    TextTable table({"format", "bytes", "bytes/event", "encode Mev/s", "decode Mev/s"});
    table.add_row({"v1 flat", format_count(v1.size()),
                   format_fixed(static_cast<double>(v1.size()) / events, 2),
                   format_fixed(events / v1_encode / 1e6, 1),
                   format_fixed(events / v1_decode / 1e6, 1)});
    table.add_row({"v2 blocked", format_count(v2.size()),
                   format_fixed(static_cast<double>(v2.size()) / events, 2),
                   format_fixed(events / v2_encode / 1e6, 1),
                   format_fixed(events / v2_decode / 1e6, 1)});
    std::fputs(table.to_ascii().c_str(), stdout);
    std::printf("\ncompression ratio (v1/v2): %.2fx (block capacity %u)\n\n",
                ratio, block);
    TQUAD_CHECK(ratio >= 4.0, "v2 must be >= 4x smaller than v1 on stream");

    // -- CRC overhead gate -------------------------------------------------
    // v2.1 verifies a CRC-32C per block on the streaming decode path; the
    // acceptance bar is < 5% decode-time overhead. The extra work v2.1 does
    // per block is exactly one chained CRC over the 32 semantic header bytes
    // plus the payload, so time that pass directly against the plain v2.0
    // streaming decode (best-of-N each). Differencing two end-to-end decode
    // timings instead would be ill-conditioned: run-to-run frequency and
    // allocator noise is the same magnitude as the ~2% being measured.
    const auto encode_minor = [&](std::uint32_t minor) {
      trace::TraceV2Writer writer(trace.kernel_count, block, minor);
      for (const trace::Record& record : trace.records) writer.add(record);
      return writer.finish(trace.total_retired);
    };
    const auto v20_bytes = encode_minor(0);
    const auto v21_bytes = encode_minor(trace::kV2MinorCrc);
    const trace::TraceV2View plain_view = trace::TraceV2View::open(v20_bytes);
    const trace::TraceV2View crc_view = trace::TraceV2View::open(v21_bytes);
    double plain_decode = 1e100;
    double crc_pass = 1e100;
    volatile std::uint32_t crc_sink = 0;
    for (int rep = 0; rep < 25; ++rep) {
      auto begin = Clock::now();
      std::size_t decoded = 0;
      for (std::size_t b = 0; b < plain_view.block_count(); ++b) {
        decoded += plain_view.decode_block(b).size();
      }
      TQUAD_CHECK(decoded == trace.records.size(), "streaming decode lost records");
      plain_decode = std::min(plain_decode, seconds_since(begin));

      begin = Clock::now();
      for (std::size_t b = 0; b < crc_view.block_count(); ++b) {
        const trace::BlockInfo& info = crc_view.block(b);
        const std::uint8_t* header = v21_bytes.data() + info.file_offset;
        crc_sink = crc32c(header + trace::kV2BlockHeaderBytes, info.payload_bytes,
                          crc32c(header, 32));
      }
      crc_pass = std::min(crc_pass, seconds_since(begin));
    }
    (void)crc_sink;
    const double crc_overhead = crc_pass / plain_decode;
    std::printf("CRC-32C (%s): streaming decode %.1f Mev/s, per-block verify "
                "pass %.1f GB/s, overhead %.2f%%\n\n",
                crc32c_hardware() ? "sse4.2" : "software",
                events / plain_decode / 1e6,
                static_cast<double>(v21_bytes.size()) / crc_pass / 1e9,
                crc_overhead * 100.0);
    TQUAD_CHECK(crc_overhead < 0.05,
                "CRC verification must cost < 5% on streaming decode");
    TQUAD_CHECK(crc_view.decode_all().records.size() == trace.records.size(),
                "v2.1 decode with verification lost records");

    // -- Aggregation ------------------------------------------------------
    start = Clock::now();
    trace::OfflineBandwidth sequential(trace.kernel_count, slice);
    sequential.aggregate(trace);
    const double seq_time = seconds_since(start);

    ThreadPool pool(static_cast<unsigned>(cli.integer("threads")));
    const trace::TraceV2View view = trace::TraceV2View::open(v2);
    start = Clock::now();
    trace::OfflineBandwidth parallel(trace.kernel_count, slice);
    parallel.aggregate_parallel(view, pool);
    const double par_time = seconds_since(start);

    for (std::uint32_t k = 0; k < trace.kernel_count; ++k) {
      TQUAD_CHECK(sequential.kernel(k).totals.read_incl ==
                          parallel.kernel(k).totals.read_incl &&
                      sequential.kernel(k).totals.write_incl ==
                          parallel.kernel(k).totals.write_incl,
                  "parallel v2 aggregation diverged from sequential v1");
    }
    std::printf("offline aggregation at slice %llu: v1 sequential %.1f Mev/s, "
                "v2 block-parallel %.1f Mev/s (totals identical)\n",
                static_cast<unsigned long long>(slice), events / seq_time / 1e6,
                events / par_time / 1e6);
    return 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "bench_trace_codec: %s\n", err.what());
    return 1;
  }
}
