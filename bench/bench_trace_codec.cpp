// TQTR codec benchmark: v1 (flat 28-byte records) versus v2 (block-compressed,
// delta + varint) on the stream workload — the trace shape the paper's tool
// would produce when profiling a bandwidth-bound kernel.
//
// Reports bytes/event and the compression ratio (the PR's acceptance bar is
// v2 >= 4x smaller than v1 on this workload, enforced with TQUAD_CHECK),
// encode/decode throughput, and sequential-v1 versus block-parallel-v2
// offline aggregation time with a totals-equality cross-check.
#include <chrono>
#include <cstdio>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "vm/machine.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace tq;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

trace::Trace record_stream_trace(std::uint32_t elements, std::uint32_t iterations) {
  const workloads::StreamArtifacts stream = workloads::build_stream(elements, iterations);
  vm::HostEnv host;
  trace::TraceRecorder recorder(stream.program);
  vm::Machine machine(stream.program, host);
  machine.run(&recorder);
  return recorder.take();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_trace_codec: TQTR v1 vs v2 size and throughput");
  cli.add_int("elements", 4096, "stream vector length (f64 elements)");
  cli.add_int("iterations", 4, "stream benchmark repetitions");
  cli.add_int("slice", 5000, "slice interval for the aggregation timing");
  cli.add_int("threads", 4, "worker threads for v2 block-parallel aggregation");
  cli.add_int("block", trace::kDefaultBlockCapacity, "v2 block capacity (records)");
  try {
    cli.parse(argc, argv);
    const auto block = static_cast<std::uint32_t>(cli.integer("block"));
    const auto slice = static_cast<std::uint64_t>(cli.integer("slice"));

    const trace::Trace trace =
        record_stream_trace(static_cast<std::uint32_t>(cli.integer("elements")),
                            static_cast<std::uint32_t>(cli.integer("iterations")));
    const double events = static_cast<double>(trace.records.size());
    std::printf("stream trace: %s events, %s retired instructions\n\n",
                format_count(trace.records.size()).c_str(),
                format_count(trace.total_retired).c_str());

    // -- Size -------------------------------------------------------------
    auto start = Clock::now();
    const auto v1 = trace.serialize();
    const double v1_encode = seconds_since(start);
    start = Clock::now();
    const auto v2 = trace::serialize_v2(trace, block);
    const double v2_encode = seconds_since(start);

    start = Clock::now();
    const trace::Trace v1_back = trace::Trace::deserialize(v1);
    const double v1_decode = seconds_since(start);
    start = Clock::now();
    const trace::Trace v2_back = trace::Trace::deserialize(v2);
    const double v2_decode = seconds_since(start);
    TQUAD_CHECK(v1_back.records.size() == trace.records.size(), "v1 round trip");
    TQUAD_CHECK(v2_back.records.size() == trace.records.size(), "v2 round trip");

    const double ratio = static_cast<double>(v1.size()) / static_cast<double>(v2.size());
    TextTable table({"format", "bytes", "bytes/event", "encode Mev/s", "decode Mev/s"});
    table.add_row({"v1 flat", format_count(v1.size()),
                   format_fixed(static_cast<double>(v1.size()) / events, 2),
                   format_fixed(events / v1_encode / 1e6, 1),
                   format_fixed(events / v1_decode / 1e6, 1)});
    table.add_row({"v2 blocked", format_count(v2.size()),
                   format_fixed(static_cast<double>(v2.size()) / events, 2),
                   format_fixed(events / v2_encode / 1e6, 1),
                   format_fixed(events / v2_decode / 1e6, 1)});
    std::fputs(table.to_ascii().c_str(), stdout);
    std::printf("\ncompression ratio (v1/v2): %.2fx (block capacity %u)\n\n",
                ratio, block);
    TQUAD_CHECK(ratio >= 4.0, "v2 must be >= 4x smaller than v1 on stream");

    // -- Aggregation ------------------------------------------------------
    start = Clock::now();
    trace::OfflineBandwidth sequential(trace.kernel_count, slice);
    sequential.aggregate(trace);
    const double seq_time = seconds_since(start);

    ThreadPool pool(static_cast<unsigned>(cli.integer("threads")));
    const trace::TraceV2View view = trace::TraceV2View::open(v2);
    start = Clock::now();
    trace::OfflineBandwidth parallel(trace.kernel_count, slice);
    parallel.aggregate_parallel(view, pool);
    const double par_time = seconds_since(start);

    for (std::uint32_t k = 0; k < trace.kernel_count; ++k) {
      TQUAD_CHECK(sequential.kernel(k).totals.read_incl ==
                          parallel.kernel(k).totals.read_incl &&
                      sequential.kernel(k).totals.write_incl ==
                          parallel.kernel(k).totals.write_incl,
                  "parallel v2 aggregation diverged from sequential v1");
    }
    std::printf("offline aggregation at slice %llu: v1 sequential %.1f Mev/s, "
                "v2 block-parallel %.1f Mev/s (totals identical)\n",
                static_cast<unsigned long long>(slice), events / seq_time / 1e6,
                events / par_time / 1e6);
    return 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "bench_trace_codec: %s\n", err.what());
    return 1;
  }
}
