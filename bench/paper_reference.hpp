// Reference values transcribed from the paper's tables, printed next to our
// measurements so every bench shows paper-vs-reproduction side by side.
//
// Absolute numbers cannot match (the paper profiles the real hArtes wfs
// binary on a 2.83 GHz Core 2 Quad under Pin; we profile a reimplementation
// on an interpreter at reduced scale). What must match is the *shape*: the
// ranking, the ratios called out in the text, and the phase structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tq::bench {

/// One row of the paper's Table I (gprof flat profile of hArtes wfs).
struct PaperFlatRow {
  const char* kernel;
  double percent_time;
  double self_seconds;
  std::uint64_t calls;
};

/// Table I, top kernels (full transcription of the published rows).
inline const std::vector<PaperFlatRow>& paper_table1() {
  static const std::vector<PaperFlatRow> rows{
      {"wav_store", 31.91, 0.28, 1},
      {"fft1d", 28.23, 0.25, 984},
      {"DelayLine_processChunk", 14.23, 0.12, 493},
      {"bitrev", 8.19, 0.07, 2015232},
      {"zeroRealVec", 7.44, 0.06, 15782},
      {"AudioIo_setFrames", 4.01, 0.03, 493},
      {"perm", 2.07, 0.02, 984},
      {"cadd", 0.79, 0.01, 1009664},
      {"cmult", 0.73, 0.01, 1009664},
      {"Filter_process", 0.71, 0.01, 493},
      {"wav_load", 0.44, 0.00, 1},
      {"Filter_process_pre_", 0.35, 0.00, 493},
      {"zeroCplxVec", 0.28, 0.00, 495},
      {"r2c", 0.16, 0.00, 490},
      {"c2r", 0.14, 0.00, 493},
      {"AudioIo_getFrames", 0.14, 0.00, 489},
      {"ffw", 0.08, 0.00, 2},
      {"vsmult2d", 0.02, 0.00, 7026},
      {"calculateGainPQ", 0.02, 0.00, 6994},
      {"PrimarySource_deriveTP", 0.02, 0.00, 236},
      {"ldint", 0.01, 0.00, 1},
  };
  return rows;
}

/// One row of the paper's Table II (QUAD producer/consumer summary).
struct PaperQuadRow {
  const char* kernel;
  std::uint64_t in_excl, in_unma_excl, out_excl, out_unma_excl;
  std::uint64_t in_incl, in_unma_incl, out_incl, out_unma_incl;
};

/// Table II, full transcription.
inline const std::vector<PaperQuadRow>& paper_table2() {
  static const std::vector<PaperQuadRow> rows{
      {"AudioIo_getFrames", 2082977, 2003143, 2030924, 4178, 2193001, 2003319, 2132616, 4290},
      {"AudioIo_setFrames", 65642447, 131797, 64790862, 64618668, 66910617, 131955, 65875370, 64618788},
      {"DelayLine_processChunk", 136426363, 187911, 130079532, 162800, 1207848481, 188349, 1199055238, 163146},
      {"Filter_process", 76962891, 65853, 8367732, 16562, 166795095, 66075, 113578568, 16744},
      {"Filter_process_pre_", 8159527, 16623, 8288564, 16480, 8310811, 16807, 8428110, 16614},
      {"PrimarySource_deriveTP", 28658, 271, 9504, 248, 102558, 785, 81336, 750},
      {"bitrev", 147305084, 145, 64488030, 86, 1092514838, 397, 991569196, 214},
      {"c2r", 2062775, 4231, 2019224, 4180, 22360399, 4433, 22271396, 4310},
      {"cadd", 73825250, 129, 32309436, 82, 203213962, 377, 153474676, 194},
      {"calculateGainPQ", 654672, 305, 223904, 270, 2977380, 1151, 6046220, 1384},
      {"cmult", 73767500, 137, 32309306, 74, 235522840, 393, 185786118, 194},
      {"fft1d", 541111698, 115143, 348733474, 86182, 3377052372, 115439, 3178842792, 86370},
      {"ffw", 571706, 4863, 177374320, 16640, 832298, 5496, 177633766, 17151},
      {"ldint", 81, 73, 72, 64, 399, 231, 336, 168},
      {"perm", 15747216, 55745, 31271422, 47762, 190358486, 55985, 221582640, 47914},
      {"r2c", 2048600, 4331, 8028298, 8458, 26181770, 4571, 32117142, 8600},
      {"vsmult2d", 513564, 159, 224864, 152, 1414418, 705, 1807246, 690},
      {"wav_load", 73166075, 5606, 118994504, 2000393, 148386954, 6668, 194027099, 2001719},
      {"wav_store", 3407275698, 64941803, 1754503491, 392, 5946326334, 64942676, 4282480373, 1115},
      {"zeroCplxVec", 48499, 171, 8151616, 41130, 36631679, 417, 44664318, 41282},
      {"zeroRealVec", 1257818, 219, 65398908, 140194, 391633848, 537, 454905252, 140406},
  };
  return rows;
}

/// One row of the paper's Table III (flat profile of the QUAD-instrumented
/// run): new %time, rank, and trend vs Table I.
struct PaperInstrumentedRow {
  const char* kernel;
  double percent_time;
  unsigned rank;
  const char* trend;
};

inline const std::vector<PaperInstrumentedRow>& paper_table3() {
  static const std::vector<PaperInstrumentedRow> rows{
      {"wav_store", 33.69, 1, "↔"},
      {"fft1d", 30.35, 2, "↔"},
      {"DelayLine_processChunk", 10.85, 4, "↓"},
      {"bitrev", 0.42, 11, "↓↓"},
      {"zeroRealVec", 3.14, 5, "↓"},
      {"AudioIo_setFrames", 11.19, 3, "↑↑"},
      {"perm", 1.52, 7, "↔"},
      {"cadd", 0.39, 13, "↓"},
      {"cmult", 2.12, 6, "↑"},
  };
  return rows;
}

/// The paper's five phases (Table IV): names and member kernels.
struct PaperPhase {
  const char* name;
  std::vector<const char*> kernels;
  double span_percent;  ///< "% phase span"
};

inline const std::vector<PaperPhase>& paper_table4_phases() {
  static const std::vector<PaperPhase> phases{
      {"initialization", {"ffw", "ldint"}, 0.007},
      {"wave load", {"wav_load"}, 1.1103},
      {"wave propagation",
       {"vsmult2d", "calculateGainPQ", "PrimarySource_deriveTP"},
       21.5891},
      {"WFS main processing",
       {"fft1d", "DelayLine_processChunk", "bitrev", "zeroRealVec",
        "AudioIo_setFrames", "perm", "cadd", "cmult", "Filter_process",
        "Filter_process_pre_", "zeroCplxVec", "r2c", "c2r",
        "AudioIo_getFrames"},
       45.4983},
      {"wave save", {"wav_store"}, 53.3469},
  };
  return phases;
}

/// Headline Table IV bandwidth numbers (bytes/instruction) quoted in the text.
inline constexpr double kPaperSetFramesMaxBpi = 53.2686;  // > 50 B/instr
inline constexpr double kPaperOtherKernelsMaxBpi = 3.39;  // all others <= ~3.4

/// Section V-A: instrumentation slowdown range vs native execution.
inline constexpr double kPaperSlowdownLow = 37.2;
inline constexpr double kPaperSlowdownHigh = 68.95;

}  // namespace tq::bench
