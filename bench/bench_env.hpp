// Hardware/toolchain context stamped into every BENCH_*.json writer, so a
// perf number (or a skipped gate) is interpretable away from the machine
// that produced it — the parallel-pipeline floor, for instance, is only
// enforced on >= 4 hardware threads.
#pragma once

#include <bit>
#include <cstdio>
#include <string>
#include <thread>

namespace tq::bench {

inline const char* byte_order_name() {
  if constexpr (std::endian::native == std::endian::little) return "little";
  if constexpr (std::endian::native == std::endian::big) return "big";
  return "mixed";
}

inline std::string compiler_name() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#elif defined(_MSC_VER)
  return "msvc " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

/// Emit the shared context fields into an open JSON object. `indent` is the
/// leading whitespace of the surrounding writer; a trailing comma is always
/// printed, so call this first inside the object.
inline void write_env_json_fields(std::FILE* json, const char* indent = "  ") {
  std::fprintf(json,
               "%s\"hw_threads\": %u,\n"
               "%s\"byte_order\": \"%s\",\n"
               "%s\"compiler\": \"%s\",\n",
               indent, std::thread::hardware_concurrency(), indent,
               byte_order_name(), indent, compiler_name().c_str());
}

}  // namespace tq::bench
