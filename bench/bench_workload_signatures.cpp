// Generality check: tQUAD across the workload-zoo registry.
//
// The paper claims the tool "is general and not restricted to any particular
// architecture" and that its bytes-per-instruction unit gives a
// platform-independent intensity measure. This bench profiles every
// registered workload at bench scale and *gates* the measured signature
// against the shape each zoo entry declares:
//
//   streaming   — the block-copy kernel dominates every scalar kernel in
//                 traffic density (B/instr);
//   strided     — matmul's read traffic is exactly the 2*n^3 operand streams
//                 of the inner product, below the streaming peak;
//   chaotic     — the pointer chase is read-only (no write traffic) and its
//                 per-slice address spread dwarfs a sequential sweep's; the
//                 histogram's RMW scatter reads exactly what it writes;
//   mixed       — the hash-join probe spreads like a chase while its build
//                 phase streams, landing between the two extremes;
//   phase-sharp — phase detection recovers at least the declared number of
//                 execution phases.
//
// Exits nonzero when any gate fails and writes BENCH_zoo.json (one row per
// workload) for CI trend tracking.
//
// Note what B/instr means: traffic *density*, not speed. A pointer chase —
// the slowest pattern on real hardware — is nearly all loads, so its
// per-instruction traffic is respectable; the paper pairs the unit with
// CPI/IPC to recover wall-clock estimates (§II, last paragraph).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "session/session.hpp"
#include "support/table.hpp"
#include "tquad/address_map.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "workloads/registry.hpp"

#include "bench_env.hpp"

namespace {

using namespace tq;

constexpr std::uint64_t kSlice = 1000;

/// Measured signature of one kernel within one workload run.
struct KernelSignature {
  double rw_bpi = 0.0;           ///< avg read+write bytes per instruction
  double spread = 0.0;           ///< distinct 256 B buckets touched per access
  std::uint64_t read_bytes = 0;  ///< stack-excluded totals
  std::uint64_t write_bytes = 0;
};

struct WorkloadRow {
  std::string name;
  const char* shape = "";
  std::uint64_t retired = 0;
  std::uint64_t accesses = 0;
  std::size_t phases = 0;
  std::map<std::string, KernelSignature> kernels;
};

int failures = 0;

void gate(bool ok, const std::string& what) {
  std::printf("  %-68s %s\n", what.c_str(), ok ? "yes" : "NO");
  if (!ok) ++failures;
}

WorkloadRow profile(const workloads::Entry& entry) {
  workloads::Instance instance = entry.build_bench();
  session::ProfileSession session(instance.program, session::SessionConfig{});
  tquad::TQuadTool tquad(instance.program,
                         tquad::Options{.slice_interval = kSlice});
  tquad::AddressMapTool map(
      instance.program, {.slice_interval = kSlice, .bucket_bytes = 256});
  session.add_consumer(tquad);
  session.add_consumer(map);
  const vm::RunOutcome outcome = session.run_live(instance.host);

  WorkloadRow row;
  row.name = entry.name;
  row.shape = workloads::shape_name(entry.shape);
  row.retired = outcome.retired;
  row.accesses = map.total_accesses();
  row.phases = tquad::detect_phases(tquad).size();
  for (const auto& [kernel, kmap] : map.kernels()) {
    if (kernel == tquad::kNoKernel) continue;
    const std::uint64_t data_accesses = kmap.accesses - kmap.stack_accesses;
    if (data_accesses == 0) continue;
    KernelSignature sig;
    sig.spread = static_cast<double>(kmap.cells.size()) /
                 static_cast<double>(data_accesses);
    const auto stats =
        tquad::bandwidth_stats(tquad.bandwidth().kernel(kernel), kSlice);
    sig.rw_bpi = stats.avg_read_incl + stats.avg_write_incl;
    const auto& totals = tquad.bandwidth().kernel(kernel).totals;
    sig.read_bytes = totals.read_excl;
    sig.write_bytes = totals.write_excl;
    row.kernels[map.kernel_label(kernel)] = sig;
  }
  return row;
}

const KernelSignature& kernel_of(const WorkloadRow& row, const char* name) {
  static const KernelSignature empty;
  const auto it = row.kernels.find(name);
  if (it == row.kernels.end()) {
    std::printf("  missing kernel '%s' in workload '%s'\n", name,
                row.name.c_str());
    ++failures;
    return empty;
  }
  return it->second;
}

}  // namespace

int main() {
  std::vector<WorkloadRow> rows;
  std::map<std::string, const WorkloadRow*> by_name;
  rows.reserve(workloads::registry().size());
  for (const workloads::Entry& entry : workloads::registry()) {
    rows.push_back(profile(entry));
  }
  for (const WorkloadRow& row : rows) by_name[row.name] = &row;

  std::printf("== workload-zoo signatures (bench scale) ==\n\n");
  TextTable table({"workload", "shape", "kernel", "R+W B/instr",
                   "spread/access", "phases"});
  for (const WorkloadRow& row : rows) {
    bool first = true;
    for (const auto& [kernel, sig] : row.kernels) {
      table.add_row({first ? row.name : "", first ? row.shape : "", kernel,
                     format_fixed(sig.rw_bpi, 3), format_fixed(sig.spread, 4),
                     first ? std::to_string(row.phases) : ""});
      first = false;
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  std::printf("\ndeclared-shape gates:\n");
  const WorkloadRow& stream = *by_name.at("stream");
  const WorkloadRow& chase = *by_name.at("chase");
  const WorkloadRow& histogram = *by_name.at("histogram");
  const WorkloadRow& matmul = *by_name.at("matmul_naive");
  const WorkloadRow& hashjoin = *by_name.at("hashjoin");
  const WorkloadRow& phased = *by_name.at("phased");

  const KernelSignature& copy = kernel_of(stream, "stream_copy");
  const KernelSignature& triad = kernel_of(stream, "stream_triad");
  const KernelSignature& chase_k = kernel_of(chase, "chase");
  const KernelSignature& hist_k = kernel_of(histogram, "histogram");
  const KernelSignature& mm_k = kernel_of(matmul, "matmul_naive");
  const KernelSignature& probe = kernel_of(hashjoin, "hj_probe");
  const KernelSignature& build = kernel_of(hashjoin, "hj_build");

  // streaming: block copies dominate every scalar kernel in density.
  double scalar_peak = 0.0;
  for (const auto& [kernel, sig] : stream.kernels) {
    if (kernel != "stream_copy") scalar_peak = std::max(scalar_peak, sig.rw_bpi);
  }
  gate(copy.rw_bpi > 4.0 * scalar_peak,
       "streaming: block copy >4x any scalar kernel (B/instr)");

  // strided: matmul reads exactly its two operand streams, below streaming.
  const std::uint64_t n = 48;  // bench-scale matmul size (registry entry)
  gate(mm_k.read_bytes == 2 * n * n * n * 8,
       "strided: matmul naive reads exactly 2*n^3 operands");
  gate(mm_k.rw_bpi < copy.rw_bpi,
       "strided: matmul density below the streaming peak");

  // chaotic: the chase is read-only and spreads across its whole working
  // set each slice, far wider than a sequential sweep (the paper's UnMA
  // lens: distinct addresses per unit of traffic).
  gate(chase_k.write_bytes == 0, "chaotic: pointer chase does no data writes");
  gate(chase_k.spread > 5.0 * triad.spread,
       "chaotic: chase per-slice address spread >5x sequential triad");
  gate(hist_k.read_bytes == hist_k.write_bytes,
       "chaotic: histogram RMW reads exactly what it writes");

  // mixed: the probe's random table walk spreads like a chase while the
  // build phase stays below it; the whole workload sits between the
  // streaming and chaotic extremes.
  gate(probe.spread > 3.0 * triad.spread,
       "mixed: hash-join probe spread >3x sequential triad");
  gate(probe.spread < chase_k.spread,
       "mixed: hash-join probe spread below the pure chase");
  gate(build.write_bytes >= 16 * 4096,
       "mixed: hash-join build scatters every (key,payload) pair");

  // phase-sharp: detection recovers the declared phase count.
  gate(phased.phases >= workloads::find_workload("phased").expected_phases,
       "phase-sharp: detected phases >= declared (" +
           std::to_string(phased.phases) + " vs " +
           std::to_string(workloads::find_workload("phased").expected_phases) +
           ")");

  std::FILE* json = std::fopen("BENCH_zoo.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    tq::bench::write_env_json_fields(json);
    std::fprintf(json, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const WorkloadRow& row = rows[i];
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"shape\": \"%s\", \"retired\": "
                   "%llu, \"accesses\": %llu, \"phases\": %zu, \"kernels\": {",
                   row.name.c_str(), row.shape,
                   static_cast<unsigned long long>(row.retired),
                   static_cast<unsigned long long>(row.accesses), row.phases);
      bool first = true;
      for (const auto& [kernel, sig] : row.kernels) {
        std::fprintf(json,
                     "%s\"%s\": {\"rw_bpi\": %.4f, \"spread\": %.5f, "
                     "\"read_bytes\": %llu, \"write_bytes\": %llu}",
                     first ? "" : ", ", kernel.c_str(), sig.rw_bpi, sig.spread,
                     static_cast<unsigned long long>(sig.read_bytes),
                     static_cast<unsigned long long>(sig.write_bytes));
        first = false;
      }
      std::fprintf(json, "}}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"gate_failures\": %d\n}\n", failures);
    std::fclose(json);
    std::printf("\nwrote BENCH_zoo.json\n");
  }

  if (failures > 0) {
    std::printf("\n%d signature gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall signature gates passed\n");
  return 0;
}
