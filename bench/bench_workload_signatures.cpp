// Generality check: tQUAD on the canonical HPC access patterns.
//
// The paper claims the tool "is general and not restricted to any particular
// architecture" and that its bytes-per-instruction unit gives a
// platform-independent intensity measure. This bench profiles the four
// synthetic workloads and prints their bandwidth signatures, which must come
// out in the textbook order:
//
//   stream copy (block moves)  >>  all scalar kernels, and
//   compute-dense matmul lowest of all (most instructions per byte moved);
//
// Note what the unit means: B/instr is traffic *density*, not speed. A
// pointer chase — the slowest pattern on real hardware — is nearly all
// loads, so its per-instruction traffic is high; compute-dense matmul is
// low. This is precisely why the paper pairs the unit with CPI/IPC to
// recover wall-clock estimates (§II, last paragraph): intensity and latency
// are separate axes.
#include <cstdio>
#include <vector>

#include "minipin/minipin.hpp"
#include "support/table.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace tq;

struct Signature {
  std::string name;
  double avg_rw_bpi = 0.0;
  double max_rw_bpi = 0.0;
  std::uint64_t instructions = 0;
};

Signature profile(const char* label, vm::Program program, const char* kernel_name) {
  vm::HostEnv host;
  pin::Engine engine(program, host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 1000});
  engine.run();
  const auto id = *program.find(kernel_name);
  const auto stats = tquad::bandwidth_stats(tool.bandwidth().kernel(id), 1000);
  Signature sig;
  sig.name = label;
  sig.avg_rw_bpi = stats.avg_read_incl + stats.avg_write_incl;
  sig.max_rw_bpi = stats.max_rw_incl;
  sig.instructions = tool.activity(id).instructions;
  return sig;
}

}  // namespace

int main() {
  std::vector<Signature> signatures;
  signatures.push_back(profile("stream copy (movs)",
                               workloads::build_stream(4096, 4).program,
                               "stream_copy"));
  signatures.push_back(profile("stream triad (scalar)",
                               workloads::build_stream(4096, 4).program,
                               "stream_triad"));
  signatures.push_back(profile("histogram (RMW scatter)",
                               workloads::build_histogram(256, 100'000).program,
                               "histogram"));
  signatures.push_back(profile("matmul naive 32x32",
                               workloads::build_matmul(32, false).program,
                               "matmul_naive"));
  signatures.push_back(profile("matmul tiled 32x32/8",
                               workloads::build_matmul(32, true, 8).program,
                               "matmul_tiled"));
  signatures.push_back(profile("pointer chase",
                               workloads::build_chase(4096, 200'000).program,
                               "chase"));

  std::printf("== memory-bandwidth signatures across workload classes ==\n\n");
  TextTable table({"workload", "avg R+W B/instr", "peak R+W B/instr",
                   "kernel instructions"});
  for (const auto& sig : signatures) {
    table.add_row({sig.name, format_fixed(sig.avg_rw_bpi, 3),
                   format_fixed(sig.max_rw_bpi, 3), format_count(sig.instructions)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  std::printf("\nshape checks:\n");
  double scalar_max = 0.0;
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    scalar_max = std::max(scalar_max, signatures[i].avg_rw_bpi);
  }
  std::printf("  block copy dominates every scalar kernel (%.1f vs <= %.1f): %s\n",
              signatures[0].avg_rw_bpi, scalar_max,
              signatures[0].avg_rw_bpi > 5.0 * scalar_max ? "yes" : "NO");
  const bool matmul_lowest =
      signatures[3].avg_rw_bpi < signatures[1].avg_rw_bpi &&
      signatures[4].avg_rw_bpi < signatures[1].avg_rw_bpi;
  std::printf("  compute-dense matmul is less traffic-dense than streaming: %s\n",
              matmul_lowest ? "yes" : "NO");
  std::printf("  pointer chase: %.2f B/instr — dense per instruction despite being\n"
              "  latency-bound on real hardware (intensity != speed; pair with CPI)\n",
              signatures[5].avg_rw_bpi);
  return 0;
}
