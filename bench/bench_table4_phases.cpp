// Table IV reproduction: phases in the execution path of the wfs run.
//
// A tQUAD run at the paper's finest slice setting (5000 instructions) feeds
// the phase detector; for each phase the bench prints the paper's columns —
// phase span, % span, per-kernel activity span, average read/write memory
// bandwidth usage in bytes-per-instruction with the stack included/excluded,
// the per-kernel maximum (R+W) bandwidth, and the per-phase aggregate MBW.
//
// Headline shapes to reproduce:
//   * five phases with the paper's member sets (initialization / wave load /
//     wave propagation / WFS main processing / wave save);
//   * AudioIo_setFrames peaking above every other kernel by an order of
//     magnitude (paper: >50 B/instr vs <= ~3.4 for all others);
//   * wav_store alone in the last phase covering ~half the execution span.
#include <algorithm>
#include <cstdio>

#include "minipin/minipin.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tquad/consensus.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

#include "paper_reference.hpp"

namespace {

/// Label a detected phase by its most characteristic member (roles per the
/// paper's Table IV).
std::string phase_label(const tq::tquad::TQuadTool& tool,
                        const tq::tquad::Phase& phase) {
  bool has_ffw = false, has_load = false, has_gain = false, has_store = false,
       has_fft = false;
  for (auto k : phase.kernels) {
    const std::string& name = tool.kernel_name(k);
    has_ffw |= name == "ffw";
    has_load |= name == "wav_load";
    has_gain |= name == "calculateGainPQ";
    has_store |= name == "wav_store";
    has_fft |= name == "fft1d";
  }
  if (has_store) return "wave save";
  if (has_load) return "wave load";
  if (has_gain && !has_fft) return "wave propagation";
  if (has_ffw && !has_fft) return "initialization";
  if (has_fft) return "WFS main processing";
  return "(unnamed)";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("bench_table4_phases: regenerate the paper's Table IV");
  cli.add_int("slice", 5000, "time slice interval (instructions)");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::Options options;
  options.slice_interval = static_cast<std::uint64_t>(cli.integer("slice"));
  tquad::TQuadTool tool(engine, options);
  engine.run();

  // The paper averages the bandwidth columns "over several passes with
  // different time slices" and prints "<" bounds where passes disagree;
  // run two more passes at neighbouring intervals for the consensus.
  tquad::BandwidthConsensus consensus(0.10);
  consensus.add_pass(tool);
  for (const std::uint64_t extra :
       {options.slice_interval / 2, options.slice_interval * 2}) {
    wfs::WfsRun pass_run = wfs::prepare_wfs_run(cfg);
    pin::Engine pass_engine(pass_run.artifacts.program, pass_run.host);
    tquad::TQuadTool pass_tool(pass_engine,
                               tquad::Options{.slice_interval = extra});
    pass_engine.run();
    consensus.add_pass(pass_tool);
  }
  std::vector<tquad::BandwidthConsensus::Row> consensus_rows = consensus.rows();
  auto consensus_row =
      [&](std::uint32_t kernel) -> const tquad::BandwidthConsensus::Row* {
    for (const auto& row : consensus_rows) {
      if (row.kernel == kernel) return &row;
    }
    return nullptr;
  };

  const auto phases = tquad::detect_phases(tool);
  const std::uint64_t slices = tool.bandwidth().max_slice() + 1;

  std::printf("== Table IV: phases in the execution path ==\n");
  std::printf("slice interval %llu instructions; %llu time slices measured; "
              "bandwidth columns averaged over %llu passes ('<' marks "
              "pass-inconsistent upper bounds, as in the paper)\n\n",
              static_cast<unsigned long long>(options.slice_interval),
              static_cast<unsigned long long>(slices),
              static_cast<unsigned long long>(consensus.passes()));

  double global_max_bpi = 0.0;
  double setframes_max_bpi = 0.0;
  double other_max_bpi = 0.0;
  std::string save_label;
  double save_span_fraction = 0.0;

  for (std::size_t p = 0; p < phases.size(); ++p) {
    const auto& phase = phases[p];
    const std::string label = phase_label(tool, phase);
    std::printf("phase %zu: %-20s span %llu-%llu  (%.4f%% of the run)\n", p + 1,
                label.c_str(), static_cast<unsigned long long>(phase.span_begin),
                static_cast<unsigned long long>(phase.span_end),
                phase.span_fraction * 100.0);
    TextTable table({"kernel", "activity span", "avg rd incl", "avg rd excl",
                     "avg wr incl", "avg wr excl", "max R+W incl", "max R+W excl"});
    double aggregate = 0.0;
    for (auto k : phase.kernels) {
      if (tool.kernel_name(k) == "main") continue;  // driver, not a kernel
      const auto stats = tquad::bandwidth_stats(tool.bandwidth().kernel(k),
                                                options.slice_interval);
      aggregate += stats.max_rw_incl;
      global_max_bpi = std::max(global_max_bpi, stats.max_rw_incl);
      if (tool.kernel_name(k) == "AudioIo_setFrames") {
        setframes_max_bpi = stats.max_rw_incl;
      } else {
        other_max_bpi = std::max(other_max_bpi, stats.max_rw_incl);
      }
      const auto* row = consensus_row(k);
      using BC = tquad::BandwidthConsensus;
      if (row != nullptr) {
        table.add_row({tool.kernel_name(k), format_count(stats.activity_span),
                       BC::format_column(row->avg_read_incl),
                       BC::format_column(row->avg_read_excl),
                       BC::format_column(row->avg_write_incl),
                       BC::format_column(row->avg_write_excl),
                       BC::format_column(row->max_rw_incl),
                       BC::format_column(row->max_rw_excl)});
      } else {
        table.add_row({tool.kernel_name(k), format_count(stats.activity_span),
                       format_fixed(stats.avg_read_incl, 4),
                       format_fixed(stats.avg_read_excl, 4),
                       format_fixed(stats.avg_write_incl, 4),
                       format_fixed(stats.avg_write_excl, 4),
                       format_fixed(stats.max_rw_incl, 4),
                       format_fixed(stats.max_rw_excl, 4)});
      }
    }
    std::fputs(table.to_ascii(2).c_str(), stdout);
    std::printf("  aggregate MBW (sum of member maxima, stack incl): %.4f B/instr\n\n",
                aggregate);
    if (label == "wave save") {
      save_label = label;
      save_span_fraction = phase.span_fraction;
    }
  }

  std::printf("paper phase structure for comparison:\n");
  for (const auto& phase : bench::paper_table4_phases()) {
    std::printf("  %-20s (%.4f%% span):", phase.name, phase.span_percent);
    for (const char* kernel : phase.kernels) std::printf(" %s", kernel);
    std::printf("\n");
  }

  std::printf("\nshape checks:\n");
  std::printf("  phases detected: %zu (paper: 5)\n", phases.size());
  std::printf("  AudioIo_setFrames max bandwidth: %.1f B/instr; next kernel: %.1f "
              "(paper: %.1f vs <= %.1f)\n",
              setframes_max_bpi, other_max_bpi, bench::kPaperSetFramesMaxBpi,
              bench::kPaperOtherKernelsMaxBpi);
  std::printf("  setFrames dominance factor: %.1fx (paper: ~15x)\n",
              other_max_bpi > 0 ? setframes_max_bpi / other_max_bpi : 0.0);
  std::printf("  wave-save phase span: %.1f%% of the run (paper: 53.3%%)\n",
              save_span_fraction * 100.0);

  // Burst-resolution peak: at this scaled-down workload a copy burst is
  // shorter than a 5000-instruction slice, diluting the peak; re-measure
  // with slices matched to the burst length (still within the paper's
  // 5e3..1e8 sweep, relative to run length).
  {
    wfs::WfsRun fine_run = wfs::prepare_wfs_run(cfg);
    pin::Engine fine_engine(fine_run.artifacts.program, fine_run.host);
    tquad::TQuadTool fine_tool(fine_engine, tquad::Options{.slice_interval = 500});
    fine_engine.run();
    double set_peak = 0.0;
    double other_peak = 0.0;
    for (std::uint32_t k = 0; k < fine_tool.kernel_count(); ++k) {
      if (!fine_tool.reported(k) || fine_tool.kernel_name(k) == "main") continue;
      const auto stats =
          tquad::bandwidth_stats(fine_tool.bandwidth().kernel(k), 500);
      if (fine_tool.kernel_name(k) == "AudioIo_setFrames") {
        set_peak = stats.max_rw_incl;
      } else {
        other_peak = std::max(other_peak, stats.max_rw_incl);
      }
    }
    std::printf("  at burst resolution (slice 500): setFrames %.1f B/instr vs next "
                "%.1f — %.1fx dominance\n",
                set_peak, other_peak, other_peak > 0 ? set_peak / other_peak : 0.0);
  }
  return 0;
}
