// Table II reproduction: QUAD producer/consumer summary of the wfs kernels.
//
// One QUAD run records both stack classifications simultaneously; the table
// prints IN / IN UnMA / OUT / OUT UnMA with the stack excluded and included,
// exactly the paper's columns, followed by the qualitative checks the
// paper's discussion rests on:
//   * zeroRealVec / zeroCplxVec read (almost) only from the stack — the
//     include/exclude IN ratio explodes (paper: > 300 / > 750);
//   * fft1d's IN UnMA is (nearly) identical in both cases — its temporaries
//     are small;
//   * AudioIo_setFrames writes every output byte to a distinct address
//     (OUT UnMA ~ bytes written once);
//   * AudioIo_getFrames reads via separate addresses (IN ~ IN UnMA);
//   * wav_store reads a huge number of distinct locations and exposes almost
//     nothing to other kernels (tiny OUT UnMA);
//   * ffw writes small tables whose bytes the whole run then consumes
//     (OUT >> bytes written).
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "minipin/minipin.hpp"
#include "quad/quad_tool.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "wfs/runner.hpp"

#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("bench_table2_quad_bindings: regenerate the paper's Table II");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  cli.add_flag("csv", false, "also print CSV");
  cli.add_flag("dot", false, "print the QDU graph in Graphviz DOT");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  quad::QuadTool tool(engine);
  engine.run();

  std::map<std::string, const bench::PaperQuadRow*> paper;
  for (const auto& row : bench::paper_table2()) paper[row.kernel] = &row;

  TextTable table({"kernel", "IN ex", "INunma ex", "OUT ex", "OUTunma ex",
                   "IN in", "INunma in", "OUT in", "OUTunma in"});
  auto kernel_id = [&](const char* name) {
    return *run.artifacts.program.find(name);
  };
  for (const auto& row : bench::paper_table2()) {
    const auto id = kernel_id(row.kernel);
    const auto& ex = tool.excluding_stack(id);
    const auto& in = tool.including_stack(id);
    table.add_row({row.kernel, format_count(ex.in_bytes),
                   format_count(ex.in_unma.count()), format_count(ex.out_bytes),
                   format_count(ex.out_unma.count()), format_count(in.in_bytes),
                   format_count(in.in_unma.count()), format_count(in.out_bytes),
                   format_count(in.out_unma.count())});
  }

  std::printf("== Table II: QUAD producer/consumer summary ==\n");
  std::printf("workload: %u speakers, %u chunks x %u samples, FFT %u\n\n",
              cfg.speakers, cfg.chunks, cfg.chunk_size, cfg.fft_size);
  std::fputs(table.to_ascii().c_str(), stdout);
  if (cli.flag("csv")) std::fputs(table.to_csv().c_str(), stdout);

  // Shape checks from the paper's discussion.
  auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? std::numeric_limits<double>::infinity()
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  std::printf("\nshape checks (paper expectation in parentheses):\n");
  {
    const auto id = kernel_id("zeroRealVec");
    const double r =
        ratio(tool.including_stack(id).in_bytes, tool.excluding_stack(id).in_bytes);
    std::printf("  zeroRealVec IN incl/excl ratio: %s (> 300)\n",
                std::isinf(r) ? "inf" : format_fixed(r, 1).c_str());
  }
  {
    const auto id = kernel_id("zeroCplxVec");
    const double r =
        ratio(tool.including_stack(id).in_bytes, tool.excluding_stack(id).in_bytes);
    std::printf("  zeroCplxVec IN incl/excl ratio: %s (> 750)\n",
                std::isinf(r) ? "inf" : format_fixed(r, 1).c_str());
  }
  {
    const auto id = kernel_id("fft1d");
    const auto& ex = tool.excluding_stack(id);
    const auto& in = tool.including_stack(id);
    std::printf("  fft1d IN UnMA excl vs incl: %s vs %s (nearly identical)\n",
                format_count(ex.in_unma.count()).c_str(),
                format_count(in.in_unma.count()).c_str());
  }
  {
    const auto id = kernel_id("AudioIo_setFrames");
    const auto& ex = tool.excluding_stack(id);
    const std::uint64_t frame_bytes = cfg.output_samples() * 4;
    std::printf("  AudioIo_setFrames OUT UnMA: %s == output bytes %s "
                "(every byte to a distinct address)\n",
                format_count(ex.out_unma.count()).c_str(),
                format_count(frame_bytes).c_str());
  }
  {
    const auto id = kernel_id("AudioIo_getFrames");
    const auto& ex = tool.excluding_stack(id);
    std::printf("  AudioIo_getFrames IN vs IN UnMA: %s vs %s (IN ~ IN UnMA)\n",
                format_count(ex.in_bytes).c_str(),
                format_count(ex.in_unma.count()).c_str());
  }
  {
    const auto id = kernel_id("wav_store");
    const auto& ex = tool.excluding_stack(id);
    std::printf("  wav_store IN UnMA: %s (huge) vs OUT UnMA: %s (tiny)\n",
                format_count(ex.in_unma.count()).c_str(),
                format_count(ex.out_unma.count()).c_str());
  }
  {
    const auto id = kernel_id("ffw");
    const auto& ex = tool.excluding_stack(id);
    std::printf("  ffw OUT / OUT UnMA: %s / %s (small tables, consumed all run)\n",
                format_count(ex.out_bytes).c_str(),
                format_count(ex.out_unma.count()).c_str());
  }

  if (cli.flag("dot")) {
    std::printf("\n-- QDU graph --\n%s", tool.qdu_graph_dot().c_str());
  } else {
    std::printf("\n(QDU graph available with -dot; %zu bindings recorded)\n",
                tool.bindings().size());
  }
  return 0;
}
