// Figure 6 reproduction: memory bandwidth usage of the top-ten kernels,
// read accesses, stack area included, coarse time slices.
//
// The paper plots a 3D ribbon chart (x = time slice, z = kernel, y = bytes
// read per slice) at a slice interval of 1e8 instructions (64 slices for the
// whole run). We render the same data as per-kernel heat strips over a
// proportionally coarse slice: the run divided into ~64 slices.
//
// Expected shape: wav_store silent through the first half of the run and the
// only active kernel in the second half; the processing kernels dense in the
// first half.
#include <cstdio>
#include <fstream>

#include "minipin/minipin.hpp"
#include "support/ascii_chart.hpp"
#include "support/cli.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("bench_fig6_read_bandwidth: regenerate the paper's Figure 6");
  cli.add_int("slices", 64, "number of coarse time slices across the run (paper: 64)");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  cli.add_string("csv", "", "write the per-slice series (long format) to this path");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();

  // Pre-measure the run length to derive the coarse interval, then profile.
  wfs::WfsRun probe = wfs::prepare_wfs_run(cfg);
  vm::Machine probe_machine(probe.artifacts.program, probe.host);
  const std::uint64_t total = probe_machine.run().retired;
  const std::uint64_t interval = std::max<std::uint64_t>(
      1, total / static_cast<std::uint64_t>(cli.integer("slices")));

  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = interval});
  engine.run();

  // Top ten kernels of Table I (the figure plots these).
  const char* kTopTen[] = {
      "wav_store", "fft1d",     "DelayLine_processChunk", "bitrev",
      "zeroRealVec", "AudioIo_setFrames", "perm", "cadd", "cmult",
      "Filter_process",
  };

  std::printf("== Figure 6: read bandwidth per slice, stack included ==\n");
  std::printf("slice interval %s instructions (%llu slices across the run)\n\n",
              format_count(interval).c_str(),
              static_cast<unsigned long long>(tool.bandwidth().max_slice() + 1));

  std::vector<ChartSeries> series;
  for (const char* name : kTopTen) {
    const auto id = *run.artifacts.program.find(name);
    series.push_back(
        ChartSeries{name, tquad::dense_series(tool, id, tquad::Metric::kReadIncl)});
  }
  ChartOptions options;
  options.width = 96;
  std::fputs(render_heat_strips(series, options).c_str(), stdout);

  if (!cli.str("csv").empty()) {
    std::ofstream csv(cli.str("csv"));
    csv << "kernel,slice,bytes\n";
    for (const auto& s : series) {
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        if (s.values[i] > 0) {
          csv << s.name << ',' << i << ',' << s.values[i] << '\n';
        }
      }
    }
    std::printf("\nseries written to %s\n", cli.str("csv").c_str());
  }

  // Shape checks: wav_store is silent until the processing loop completes and
  // is then the only active kernel.
  const auto store_id = *run.artifacts.program.find("wav_store");
  const auto& store_bw = tool.bandwidth().kernel(store_id);
  const std::uint64_t store_start = store_bw.first_active_slice();
  const auto store = tquad::dense_series(tool, store_id, tquad::Metric::kReadIncl);
  double before = 0, after = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    (i < store_start ? before : after) += store[i];
  }
  double others_after = 0;
  for (std::size_t s = 1; s < series.size(); ++s) {
    for (std::size_t i = store_start; i < series[s].values.size(); ++i) {
      others_after += series[s].values[i];
    }
  }
  std::printf("\nshape checks:\n");
  std::printf("  wav_store first active in slice %llu of %zu (%.0f%% into the run; "
              "paper: ~middle)\n",
              static_cast<unsigned long long>(store_start), store.size(),
              100.0 * static_cast<double>(store_start) /
                  static_cast<double>(store.size()));
  std::printf("  wav_store read bytes before/after that point: %s / %s\n",
              format_bytes(static_cast<std::uint64_t>(before)).c_str(),
              format_bytes(static_cast<std::uint64_t>(after)).c_str());
  std::printf("  all other top kernels after that point: %s (paper: ~0 — wav_store "
              "is the only kernel active)\n",
              format_bytes(static_cast<std::uint64_t>(others_after)).c_str());
  return 0;
}
