// Figure 7 reproduction: memory bandwidth usage of the *last* ten kernels,
// write accesses, stack area excluded, finer time slices, second half of the
// run cut off (only wav_store is active there).
//
// The paper uses a 25e6-instruction slice (255 slices, 128 shown); we divide
// the run into ~256 slices and render the first half.
#include <cstdio>
#include <fstream>

#include "minipin/minipin.hpp"
#include "support/ascii_chart.hpp"
#include "support/cli.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("bench_fig7_write_bandwidth: regenerate the paper's Figure 7");
  cli.add_int("slices", 256, "number of time slices across the run (paper: 255)");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  cli.add_string("csv", "", "write the per-slice series (long format) to this path");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();

  wfs::WfsRun probe = wfs::prepare_wfs_run(cfg);
  vm::Machine probe_machine(probe.artifacts.program, probe.host);
  const std::uint64_t total = probe_machine.run().retired;
  const std::uint64_t interval = std::max<std::uint64_t>(
      1, total / static_cast<std::uint64_t>(cli.integer("slices")));

  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = interval});
  engine.run();

  // The last ten kernels of Table I (the quiet ones the coarse Figure 6
  // cannot resolve).
  const char* kLastTen[] = {
      "wav_load", "Filter_process_pre_", "zeroCplxVec", "r2c", "c2r",
      "AudioIo_getFrames", "ffw", "vsmult2d", "calculateGainPQ",
      "PrimarySource_deriveTP",
  };

  std::printf("== Figure 7: write bandwidth per slice, stack excluded ==\n");
  std::printf("slice interval %s instructions; second half of the run cut off "
              "(only wav_store is active there)\n\n",
              format_count(interval).c_str());

  std::vector<ChartSeries> series;
  for (const char* name : kLastTen) {
    const auto id = *run.artifacts.program.find(name);
    auto values = tquad::dense_series(tool, id, tquad::Metric::kWriteExcl);
    values.resize(values.size() / 2);  // cut off the wav_store half
    series.push_back(ChartSeries{name, std::move(values)});
  }
  ChartOptions options;
  options.width = 96;
  std::fputs(render_heat_strips(series, options).c_str(), stdout);

  if (!cli.str("csv").empty()) {
    std::ofstream csv(cli.str("csv"));
    csv << "kernel,slice,bytes\n";
    for (const auto& s : series) {
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        if (s.values[i] > 0) {
          csv << s.name << ',' << i << ',' << s.values[i] << '\n';
        }
      }
    }
    std::printf("\nseries written to %s\n", cli.str("csv").c_str());
  }

  // Shape checks: wav_load confined to an early burst; the propagation
  // kernels (vsmult2d/calculateGainPQ/PrimarySource) stop at move_chunks;
  // getFrames regular throughout the processing region.
  auto activity_extent = [&](const char* name) {
    const auto id = *run.artifacts.program.find(name);
    const auto& bw = tool.bandwidth().kernel(id);
    return std::pair<std::uint64_t, std::uint64_t>{bw.first_active_slice(),
                                                   bw.last_active_slice()};
  };
  const auto load = activity_extent("wav_load");
  const auto gain = activity_extent("calculateGainPQ");
  const auto frames = activity_extent("AudioIo_getFrames");
  std::printf("\nshape checks:\n");
  std::printf("  wav_load active slices %llu-%llu (early, short)\n",
              static_cast<unsigned long long>(load.first),
              static_cast<unsigned long long>(load.second));
  std::printf("  calculateGainPQ active slices %llu-%llu "
              "(stops when the source stops moving)\n",
              static_cast<unsigned long long>(gain.first),
              static_cast<unsigned long long>(gain.second));
  std::printf("  AudioIo_getFrames active slices %llu-%llu "
              "(regular across the processing region)\n",
              static_cast<unsigned long long>(frames.first),
              static_cast<unsigned long long>(frames.second));
  std::printf("  gain kernels end before getFrames: %s (paper: yes)\n",
              gain.second < frames.second ? "yes" : "NO");
  return 0;
}
