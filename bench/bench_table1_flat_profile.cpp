// Table I reproduction: gprof-style flat profile of the wfs application.
//
// Regenerates the paper's Table I with gsim (instruction-count PC sampling)
// over the reimplemented hArtes wfs, printing our rows next to the paper's
// %time column. Expected shape: wav_store and fft1d on top together taking
// ~60% of the run, then DelayLine_processChunk, with bitrev/zeroRealVec in
// the 7-9% band.
//
// Known deviation (documented in EXPERIMENTS.md): AudioIo_setFrames reports
// ~4% in the paper because gprof samples *wall-clock* time and the kernel is
// memory-bound on real hardware; an instruction-count time base — the
// platform-independent unit the paper itself advocates — charges it almost
// nothing, since block moves retire few instructions. Table IV's
// bytes-per-instruction view is where its cost shows up.
#include <cstdio>
#include <map>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "wfs/runner.hpp"

#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("bench_table1_flat_profile: regenerate the paper's Table I");
  cli.add_int("sample_period", 10'000, "instructions between PC samples");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  cli.add_flag("csv", false, "also print CSV");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  gprof::Options options;
  options.sample_period = static_cast<std::uint64_t>(cli.integer("sample_period"));
  gprof::GprofTool tool(engine, options);
  engine.run();

  std::map<std::string, double> paper_percent;
  std::map<std::string, std::uint64_t> paper_calls;
  for (const auto& row : bench::paper_table1()) {
    paper_percent[row.kernel] = row.percent_time;
    paper_calls[row.kernel] = row.calls;
  }

  TextTable table({"kernel", "%time", "self seconds", "calls", "self ms/call",
                   "total ms/call", "paper %time", "paper calls"});
  for (const auto& row : tool.flat_profile()) {
    if (row.name == "main") continue;  // the paper lists only the kernels
    auto paper_it = paper_percent.find(row.name);
    table.add_row({row.name, format_percent(row.time_fraction),
                   format_fixed(row.self_seconds, 4), format_count(row.calls),
                   format_fixed(row.self_ms_per_call, 3),
                   format_fixed(row.total_ms_per_call, 3),
                   paper_it == paper_percent.end() ? "-"
                                                   : format_fixed(paper_it->second, 2),
                   paper_it == paper_percent.end()
                       ? "-"
                       : format_count(paper_calls[row.name])});
  }

  std::printf("== Table I: flat profile of the wfs application ==\n");
  std::printf("workload: %u speakers, %u chunks x %u samples, FFT %u; %s retired"
              " instructions, %llu samples at period %llu\n\n",
              cfg.speakers, cfg.chunks, cfg.chunk_size, cfg.fft_size,
              format_count(tool.total_retired()).c_str(),
              static_cast<unsigned long long>(tool.total_samples()),
              static_cast<unsigned long long>(options.sample_period));
  std::fputs(tool.flat_profile_table().to_ascii().c_str(), stdout);
  std::printf("\n-- side by side with the paper --\n");
  std::fputs(table.to_ascii().c_str(), stdout);
  if (cli.flag("csv")) std::fputs(table.to_csv().c_str(), stdout);

  // Shape checks the paper's text calls out.
  const auto rows = tool.flat_profile();
  double top2 = 0;
  bool top2_are_store_fft = rows.size() >= 2 &&
                            ((rows[0].name == "wav_store" && rows[1].name == "fft1d") ||
                             (rows[0].name == "fft1d" && rows[1].name == "wav_store"));
  if (rows.size() >= 2) top2 = rows[0].time_fraction + rows[1].time_fraction;
  std::printf("\nshape checks:\n");
  std::printf("  top two kernels are wav_store+fft1d: %s (paper: yes)\n",
              top2_are_store_fft ? "yes" : "NO");
  std::printf("  their combined share: %.1f%% (paper: ~60%%)\n", top2 * 100.0);
  return 0;
}
