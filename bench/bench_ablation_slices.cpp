// Ablation: the time-slice interval (the tool's key knob, Section IV-C).
//
// "Time slice interval is a key parameter which adjusts the detailing degree
// of the extracted memory bandwidth usage information. With large time
// slices, we lose some information and a coarser view ... is obtained."
//
// The bench sweeps the interval across the paper's range (relative to run
// length) and reports, per setting: profiling runtime, number of recorded
// kernel-slice samples (the data volume), the activity resolution for a
// representative kernel, and how the measured peak bandwidth degrades as
// slices coarsen (peaks average out — the information loss the paper
// describes).
#include <chrono>
#include <cstdio>

#include "minipin/minipin.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("bench_ablation_slices: slice-interval information/cost sweep");
  cli.add_flag("tiny", false, "use the tiny test configuration");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }
  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();

  const std::uint64_t intervals[] = {1000,    5000,     25'000,    100'000,
                                     500'000, 2'500'000, 10'000'000};

  std::printf("== ablation: time slice interval ==\n\n");
  TextTable table({"slice interval", "runtime (s)", "samples", "setFrames act.slices",
                   "setFrames max B/i", "fft1d max B/i"});
  for (const std::uint64_t interval : intervals) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = interval});
    const auto t0 = std::chrono::steady_clock::now();
    engine.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();

    std::uint64_t samples = 0;
    for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
      samples += tool.bandwidth().kernel(k).series.size();
    }
    const auto set_id = *run.artifacts.program.find("AudioIo_setFrames");
    const auto fft_id = *run.artifacts.program.find("fft1d");
    const auto set_stats =
        tquad::bandwidth_stats(tool.bandwidth().kernel(set_id), interval);
    const auto fft_stats =
        tquad::bandwidth_stats(tool.bandwidth().kernel(fft_id), interval);
    table.add_row({format_count(interval), format_fixed(seconds, 3),
                   format_count(samples), format_count(set_stats.activity_span),
                   format_fixed(set_stats.max_rw_incl, 3),
                   format_fixed(fft_stats.max_rw_incl, 3)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nreading: finer slices record more samples and resolve the true peak\n"
      "bandwidth of bursty kernels (AudioIo_setFrames); at coarse slices the\n"
      "peak averages away against neighbouring computation — the information\n"
      "loss the paper describes. Runtime is nearly interval-independent: the\n"
      "per-access work dominates, slice rollover is cheap.\n");
  return 0;
}
