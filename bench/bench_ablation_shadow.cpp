// Ablation: QUAD's shadow-memory substrate under different access patterns.
//
// DESIGN.md calls out the shadow memory (byte-granular last-producer map)
// as the design choice QUAD's cost hinges on. This bench measures, with
// google-benchmark, the mark/lookup throughput for the access patterns the
// wfs kernels actually exhibit — sequential streaming (wav_store), strided
// scatter (AudioIo frames), small hot working set (fft1d) — plus the
// memory footprint of the shadow pages and UnMA bitmaps each pattern costs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "quad/shadow.hpp"
#include "support/address_set.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace tq;

constexpr std::uint64_t kBase = 0x1000'0000;

void BM_ShadowMarkSequential(benchmark::State& state) {
  const std::uint64_t span = static_cast<std::uint64_t>(state.range(0));
  quad::ShadowMemory shadow;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (std::uint64_t addr = kBase; addr < kBase + span; addr += 8) {
      shadow.mark_write(addr, 8, 1);
    }
    bytes += span;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ShadowMarkSequential)->Arg(1 << 16)->Arg(1 << 20);

void BM_ShadowMarkStrided(benchmark::State& state) {
  const std::uint64_t stride = static_cast<std::uint64_t>(state.range(0));
  quad::ShadowMemory shadow;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 16384; ++i) {
      shadow.mark_write(kBase + i * stride, 4, 2);
    }
    bytes += 16384 * 4;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ShadowMarkStrided)->Arg(64)->Arg(4096);

void BM_ShadowLookupHot(benchmark::State& state) {
  quad::ShadowMemory shadow;
  shadow.mark_write(kBase, 1 << 16, 3);
  SplitMix64 rng(7);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    std::uint64_t local = 0;
    shadow.for_each_producer(kBase + (rng.next_below(1 << 15)), 8,
                             [&](quad::ProducerId p, std::uint32_t len) {
                               local += static_cast<std::uint64_t>(p) * len;
                             });
    sum += local;
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_ShadowLookupHot);

void BM_AddressSetInsert(benchmark::State& state) {
  const bool random = state.range(0) != 0;
  SplitMix64 rng(11);
  AddressSet set;
  for (auto _ : state) {
    const std::uint64_t addr =
        random ? kBase + rng.next_below(1 << 22) : kBase + (set.count() % (1 << 22));
    set.insert_range(addr, 8);
  }
  state.counters["resident_pages"] =
      static_cast<double>(set.resident_pages());
}
BENCHMARK(BM_AddressSetInsert)->Arg(0)->Arg(1);

void print_footprints() {
  std::printf("\n== shadow footprint per access pattern (16 MiB address span) ==\n");
  TextTable table({"pattern", "bytes touched", "shadow bytes", "unma bytes",
                   "overhead factor"});
  struct Pattern {
    const char* name;
    std::uint64_t count;
    std::uint64_t stride;
    std::uint32_t size;
  };
  const Pattern patterns[] = {
      {"sequential stream", 1u << 20, 8, 8},
      {"strided scatter (64B)", 1u << 17, 64, 4},
      {"page scatter (4KiB)", 1u << 12, 4096, 4},
      {"hot 4KiB set", 1u << 20, 8, 8},
  };
  for (const auto& pattern : patterns) {
    quad::ShadowMemory shadow;
    AddressSet unma;
    std::uint64_t touched = 0;
    for (std::uint64_t i = 0; i < pattern.count; ++i) {
      const std::uint64_t addr =
          pattern.name[0] == 'h'
              ? kBase + (i * pattern.stride) % 4096  // hot set wraps in a page
              : kBase + i * pattern.stride;
      shadow.mark_write(addr, pattern.size, 1);
      unma.insert_range(addr, pattern.size);
      touched += pattern.size;
    }
    const std::uint64_t shadow_bytes = shadow.resident_bytes();
    const std::uint64_t unma_bytes = unma.resident_pages() * 512;
    table.add_row({pattern.name, format_bytes(touched), format_bytes(shadow_bytes),
                   format_bytes(unma_bytes),
                   format_fixed(static_cast<double>(shadow_bytes + unma_bytes) /
                                    static_cast<double>(unma.count()),
                                2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nreading: the paged design keeps dense patterns at ~2.1 bytes of\n"
              "shadow per distinct byte (2B producer id + bitmap bit); sparse page\n"
              "scatter pays a whole 8 KiB shadow page per touched location — the\n"
              "worst case for QUAD, and exactly the pattern AudioIo_setFrames'\n"
              "output exhibits at full scale.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_footprints();
  return 0;
}
