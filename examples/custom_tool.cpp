// Writing your own analysis tool against the minipin API — the same way the
// paper's tools are written against Pin.
//
// The example tool is a *working-set tracker*: for every kernel it measures
// how many distinct cache lines (64-byte blocks) the kernel touches, how
// often it revisits them, and flags streaming kernels (many lines, few
// revisits) versus resident kernels (few lines, many revisits). This is the
// kind of decision input the paper's DWB partitioning flow needs: a resident
// kernel maps well to on-chip buffers, a streaming kernel does not.
#include <cstdio>
#include <vector>

#include "minipin/minipin.hpp"
#include "support/address_set.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tquad/callstack.hpp"
#include "wfs/runner.hpp"

namespace {

using namespace tq;

/// A pintool-style analysis tool built on minipin.
class WorkingSetTool {
 public:
  explicit WorkingSetTool(pin::Engine& engine)
      : engine_(engine),
        stack_(engine.program(), tquad::LibraryPolicy::kExclude),
        lines_(engine.program().functions().size()),
        touches_(engine.program().functions().size(), 0) {
    engine.add_rtn_instrument_function([this](pin::Rtn& rtn) {
      rtn.insert_entry_call(&WorkingSetTool::on_entry, this);
    });
    engine.add_ins_instrument_function([this](pin::Ins& ins) {
      if (ins.references_memory()) {
        ins.insert_predicated_call(&WorkingSetTool::on_access, this);
      }
      if (ins.is_ret()) {
        ins.insert_predicated_call(&WorkingSetTool::on_ret, this);
      }
    });
  }

  void report() const {
    TextTable table({"kernel", "cache lines", "touches", "revisit factor", "class"});
    for (std::uint32_t k = 0; k < lines_.size(); ++k) {
      const std::uint64_t lines = lines_[k].count();
      if (lines == 0 || !stack_.tracked(k)) continue;
      const double revisit =
          static_cast<double>(touches_[k]) / static_cast<double>(lines);
      table.add_row({engine_.program().functions()[k].name, format_count(lines),
                     format_count(touches_[k]), format_fixed(revisit, 1),
                     revisit > 32.0  ? "resident (map on-chip)"
                     : revisit > 4.0 ? "mixed"
                                     : "streaming (keep off-chip)"});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
  }

 private:
  static void on_entry(void* tool, const pin::RtnArgs& args) {
    static_cast<WorkingSetTool*>(tool)->stack_.on_enter(args.func);
  }
  static void on_ret(void* tool, const pin::InsArgs& args) {
    static_cast<WorkingSetTool*>(tool)->stack_.on_ret(args.func);
  }
  static void on_access(void* tool, const pin::InsArgs& args) {
    auto& self = *static_cast<WorkingSetTool*>(tool);
    const std::uint32_t kernel = self.stack_.top();
    if (kernel == tquad::kNoKernel) return;
    // Track distinct 64-byte lines; one insert per touched line.
    for (int side = 0; side < 2; ++side) {
      const std::uint64_t ea = side == 0 ? args.read_ea : args.write_ea;
      const std::uint32_t size = side == 0 ? args.read_size : args.write_size;
      if (size == 0) continue;
      const std::uint64_t first = ea >> 6;
      const std::uint64_t last = (ea + size - 1) >> 6;
      for (std::uint64_t line = first; line <= last; ++line) {
        self.lines_[kernel].insert_range(line, 1);  // line-granular set
        ++self.touches_[kernel];
      }
    }
  }

  pin::Engine& engine_;
  tquad::CallStack stack_;
  std::vector<AddressSet> lines_;
  std::vector<std::uint64_t> touches_;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("custom_tool: a working-set tracker written against minipin");
  cli.add_flag("standard", false, "use the standard (larger) workload");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }
  const wfs::WfsConfig cfg =
      cli.flag("standard") ? wfs::WfsConfig::standard() : wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  WorkingSetTool tool(engine);
  const vm::RunResult result = engine.run();
  std::printf("working-set classification after %s instructions:\n\n",
              format_count(result.retired).c_str());
  tool.report();
  std::printf("\nreading: 'resident' kernels revisit a small line set and are "
              "candidates for on-chip buffers\n(the hardware-mapping decision "
              "the paper's Table II discussion walks through).\n");
  return 0;
}
