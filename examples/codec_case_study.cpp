// A second case study from the multimedia domain: the DCT image encoder.
//
// The paper notes "tQUAD was tested on a set of real applications" but only
// has room for hArtes wfs; this example profiles another member of that set
// and shows how differently shaped its temporal profile is — a three-phase
// load -> transform -> encode pipeline instead of the wfs five-phase run.
//
//   ./build/examples/codec_case_study [-standard] [-slice N]
#include <cstdio>

#include "dctc/dctc.hpp"
#include "minipin/minipin.hpp"
#include "support/ascii_chart.hpp"
#include "support/cli.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("codec_case_study: tQUAD on the DCT image encoder");
  cli.add_flag("standard", false, "encode the 256x256 image (default: tiny)");
  cli.add_int("slice", 2000, "time slice interval");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }
  const dctc::DctcConfig cfg = cli.flag("standard") ? dctc::DctcConfig::standard()
                                                    : dctc::DctcConfig::tiny();
  const auto pixels = dctc::make_test_image(cfg);
  dctc::DctcArtifacts artifacts = dctc::build_dctc_program(cfg);
  vm::HostEnv host;
  host.attach_input(pixels);
  host.create_output();

  pin::Engine engine(artifacts.program, host);
  tquad::TQuadTool tool(
      engine, tquad::Options{.slice_interval =
                                 static_cast<std::uint64_t>(cli.integer("slice"))});
  const vm::RunResult result = engine.run();

  const auto& stream = host.output(dctc::DctcArtifacts::kOutputFd);
  std::printf("encoded %ux%u (%zu pixel bytes) into %zu bytes (%.1f:1) over %s "
              "instructions\n\n",
              cfg.width, cfg.height, pixels.size(), stream.size(),
              static_cast<double>(pixels.size()) / static_cast<double>(stream.size()),
              format_count(result.retired).c_str());

  std::fputs(tquad::flat_profile_table(tool).to_ascii().c_str(), stdout);

  std::printf("\nactivity over time:\n");
  std::vector<ChartSeries> series;
  for (const auto& row : tquad::flat_profile(tool)) {
    if (row.name == "main") continue;
    series.push_back(ChartSeries{
        row.name,
        tquad::dense_series(tool, row.kernel, tquad::Metric::kReadWriteIncl)});
  }
  std::fputs(render_heat_strips(series).c_str(), stdout);

  tquad::PhaseOptions phase_options;
  phase_options.coarse_factor = 64;  // coarse windows must span one block
  const auto phases = tquad::detect_phases(tool, phase_options);
  std::printf("\ndetected phases:\n%s",
              tquad::describe_phases(tool, phases).c_str());

  // Validate against the golden encoder.
  const dctc::GoldenEncode golden = dctc::run_golden_encode(cfg, pixels);
  std::printf("\nvalidation: stream %s the golden encoder's (%zu vs %zu bytes)\n",
              stream == golden.stream ? "matches" : "DIFFERS FROM", stream.size(),
              golden.stream.size());
  return stream == golden.stream ? 0 : 1;
}
