; saxpy in guest assembly: y = a*x + y over 1024 doubles, 20 passes.
; Run it:            ./build/tools/asm_run examples/saxpy.s
; Profile it:        ./build/tools/asm_run examples/saxpy.s -profile
.entry main
.global x 8192 64
.global y 8192 64

.func init
    movi   r8, x
    movi   r9, y
    movi   r10, 0                 ; i
init_loop:
    sltsi  r0, r10, 1024
    brz    r0, init_done
    i2f    f1, r10
    shli   r11, r10, 3
    add    r12, r11, r8
    fstore [r12+0], f1            ; x[i] = i
    fmovi  f2, 0.5
    add    r12, r11, r9
    fstore [r12+0], f2            ; y[i] = 0.5
    addi   r10, r10, 1
    jmp    init_loop
init_done:
    ret

.func saxpy
    movi   r8, x
    movi   r9, y
    fmovi  f8, 1.0009765625       ; a
    movi   r10, 0
saxpy_loop:
    sltsi  r0, r10, 1024
    brz    r0, saxpy_done
    shli   r11, r10, 3
    add    r12, r11, r8
    fload  f1, [r12+0]
    fmul   f1, f1, f8             ; a*x[i]
    add    r12, r11, r9
    fload  f2, [r12+0]
    fadd   f2, f2, f1
    fstore [r12+0], f2            ; y[i] += a*x[i]
    addi   r10, r10, 1
    jmp    saxpy_loop
saxpy_done:
    ret

.func main
    call   init
    movi   r28, 0
pass_loop:
    sltsi  r0, r28, 20
    brz    r0, done
    call   saxpy
    addi   r28, r28, 1
    jmp    pass_loop
done:
    movi   r1, 1024
    sys    printi                 ; report the element count
    halt
