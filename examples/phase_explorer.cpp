// Interactive exploration of the slice-interval / phase-detection tradeoff
// (Section IV-C: "Time slice interval is a key parameter which adjusts the
// detailing degree of the extracted memory bandwidth usage information").
//
// Runs tQUAD at several slice intervals over the same workload and shows how
// the activity picture sharpens: at coarse slices, briefly-active kernels
// smear into their neighbours and phases blur together; at fine slices the
// five-phase structure emerges.
//
//   ./build/examples/phase_explorer              # wfs tiny workload
//   ./build/examples/phase_explorer -standard    # full workload
#include <cstdio>

#include "minipin/minipin.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("phase_explorer: slice-interval sweep for phase detection");
  cli.add_flag("standard", false, "use the standard (larger) workload");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }
  const wfs::WfsConfig cfg =
      cli.flag("standard") ? wfs::WfsConfig::standard() : wfs::WfsConfig::tiny();

  const std::uint64_t intervals[] = {500, 5'000, 50'000, 500'000};
  for (const std::uint64_t interval : intervals) {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = interval});
    engine.run();
    const auto phases = tquad::detect_phases(tool);
    std::printf("== slice interval %s: %llu slices, %zu phases ==\n",
                format_count(interval).c_str(),
                static_cast<unsigned long long>(tool.bandwidth().max_slice() + 1),
                phases.size());
    std::fputs(tquad::describe_phases(tool, phases).c_str(), stdout);

    // Activity resolution for a representative brief kernel.
    const auto gain_id = *run.artifacts.program.find("calculateGainPQ");
    const auto stats =
        tquad::bandwidth_stats(tool.bandwidth().kernel(gain_id), interval);
    std::printf("calculateGainPQ: active %llu slices, span %llu-%llu, peak %.3f "
                "B/instr\n\n",
                static_cast<unsigned long long>(stats.activity_span),
                static_cast<unsigned long long>(stats.first_slice),
                static_cast<unsigned long long>(stats.last_slice),
                stats.max_rw_incl);
  }
  std::printf("reading: the phase count stabilises once slices resolve the\n"
              "application's chunk period; beyond that, finer slices only add\n"
              "sample volume (see bench_ablation_slices for the cost side).\n");
  return 0;
}
