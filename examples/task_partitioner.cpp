// The downstream use the paper builds toward (Sections I, V, VI): feed the
// profiling data into the Delft WorkBench partitioning step. This example
// assembles the whole decision pipeline:
//
//   1. QUAD      -> who communicates with whom (and through how many bytes)
//   2. clustering-> kernel groups that keep communication on-chip
//                   (the paper's future-work step, implemented in
//                   src/cluster)
//   3. tQUAD     -> per-cluster bandwidth intensity and activity spans
//   4. a simple scoring rule -> which clusters to move to the
//                   reconfigurable fabric, echoing the paper's Table II
//                   discussion ("fft1d is a better candidate than wav_store
//                   for hardware mapping").
//
//   ./build/examples/task_partitioner [-standard] [-clusters N]
#include <cstdio>

#include "cluster/cluster.hpp"
#include "minipin/minipin.hpp"
#include "quad/quad_tool.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("task_partitioner: QUAD + clustering + tQUAD -> HW/SW hints");
  cli.add_flag("standard", false, "use the standard (larger) workload");
  cli.add_int("clusters", 5, "target number of task clusters");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }
  const wfs::WfsConfig cfg =
      cli.flag("standard") ? wfs::WfsConfig::standard() : wfs::WfsConfig::tiny();

  // One engine, both tools (minipin composes them on a single run).
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  quad::QuadTool quad_tool(engine);
  tquad::TQuadTool tq_tool(engine, tquad::Options{.slice_interval = 2000});
  engine.run();

  std::uint64_t run_instr = 0;
  for (std::uint32_t k = 0; k < quad_tool.kernel_count(); ++k) {
    run_instr += quad_tool.instructions(k);
  }
  cluster::ClusterOptions options;
  options.target_clusters = static_cast<std::size_t>(cli.integer("clusters"));
  // Resource budget: no cluster may hold more than ~40% of the run — the
  // fabric-capacity constraint that keeps single-linkage from chaining the
  // whole pipeline into one mega-task.
  options.max_cluster_weight = run_instr * 2 / 5;
  const cluster::Clustering clusters = cluster::cluster_kernels(quad_tool, options);

  std::printf("== task clusters (communication-driven) ==\n%s\n",
              cluster::describe_clustering(quad_tool, clusters).c_str());

  std::printf("== per-cluster mapping hints ==\n");
  TextTable table({"cluster", "kernels", "instr share", "global B/instr",
                   "stack/global ratio", "suggestion"});
  std::uint64_t total_instr = 0;
  for (std::uint32_t k = 0; k < quad_tool.kernel_count(); ++k) {
    total_instr += quad_tool.instructions(k);
  }
  for (std::size_t c = 0; c < clusters.clusters.size(); ++c) {
    std::uint64_t instr = 0;
    std::uint64_t global_in = 0, global_out_unma = 0, incl_in = 0;
    double bpi = 0.0;
    std::string names;
    for (std::uint32_t kernel : clusters.clusters[c]) {
      instr += quad_tool.instructions(kernel);
      global_in += quad_tool.excluding_stack(kernel).in_bytes;
      incl_in += quad_tool.including_stack(kernel).in_bytes;
      global_out_unma += quad_tool.excluding_stack(kernel).out_unma.count();
      const auto stats = tquad::bandwidth_stats(
          tq_tool.bandwidth().kernel(kernel), tq_tool.options().slice_interval);
      bpi = std::max(bpi, stats.max_rw_excl);
      if (!names.empty()) names += ' ';
      names += quad_tool.kernel_name(kernel);
      if (names.size() > 48) {
        names += "...";
        break;
      }
    }
    const double share =
        total_instr == 0 ? 0.0
                         : static_cast<double>(instr) / static_cast<double>(total_instr);
    const double stack_ratio =
        global_in == 0 ? 99.0
                       : static_cast<double>(incl_in) / static_cast<double>(global_in);
    // The paper's Table II logic: compute-heavy + mostly-local kernels are
    // hardware candidates (map buffers on-chip); scatter-heavy streamers
    // with unique-address output would squander the fabric.
    std::string suggestion;
    if (share > 0.15 && stack_ratio > 1.5) {
      suggestion = "HW (map local buffers on-chip)";
    } else if (share > 0.15) {
      suggestion = "HW only with fast external port";
    } else {
      suggestion = "keep in SW";
    }
    table.add_row({std::to_string(c + 1), names, format_percent(share),
                   format_fixed(bpi, 2), format_fixed(stack_ratio, 2), suggestion});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nreading: this reproduces the paper's qualitative calls — the FFT\n"
      "pipeline cluster (compute-dense, stack-heavy, small UnMA) is the\n"
      "hardware candidate; AudioIo-style scatter kernels are not, whatever\n"
      "their share, because every byte lands on a fresh external address.\n");
  return 0;
}
