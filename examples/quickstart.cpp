// Quickstart: profile a small guest program with tQUAD in ~60 lines.
//
//   1. Write a guest program with the gasm builder (or load a TQIM image).
//   2. Wire a minipin Engine and attach the TQuadTool.
//   3. Run, then read flat profile, per-kernel bandwidth and activity spans.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

int main() {
  using namespace tq;
  using gasm::F;
  using gasm::R;

  // -- 1. a tiny application: fill a vector, then sum it, 200 times --------
  gasm::ProgramBuilder prog;
  const std::uint64_t data = prog.alloc_global("data", 1024 * 8);

  auto& fill = prog.begin_function("fill");
  fill.movi(R{1}, static_cast<std::int64_t>(data));
  fill.count_loop_imm(R{2}, 0, 1024, [&] {
    fill.shli(R{3}, R{2}, 3);
    fill.add(R{3}, R{3}, R{1});
    fill.store(R{3}, 0, R{2}, 8);
  });
  fill.ret();

  auto& sum = prog.begin_function("sum");
  sum.movi(R{1}, static_cast<std::int64_t>(data));
  sum.movi(R{4}, 0);
  sum.count_loop_imm(R{2}, 0, 1024, [&] {
    sum.shli(R{3}, R{2}, 3);
    sum.add(R{3}, R{3}, R{1});
    sum.load(R{5}, R{3}, 0, 8);
    sum.add(R{4}, R{4}, R{5});
  });
  sum.ret();

  auto& main_fn = prog.begin_function("main");
  main_fn.count_loop_imm(R{28}, 0, 200, [&] {
    main_fn.call("fill");
    main_fn.call("sum");
  });
  main_fn.halt();
  vm::Program program = prog.build("main");

  // -- 2. engine + tool ------------------------------------------------------
  vm::HostEnv host;
  pin::Engine engine(program, host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 10'000});

  // -- 3. run and report -----------------------------------------------------
  const vm::RunResult result = engine.run();
  std::printf("retired %s instructions\n\n", format_count(result.retired).c_str());
  std::fputs(tquad::flat_profile_table(tool).to_ascii().c_str(), stdout);

  std::printf("\nper-kernel bandwidth (bytes/instruction over active slices):\n");
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    if (!tool.reported(k) || tool.activity(k).calls == 0) continue;
    const auto stats = tquad::bandwidth_stats(tool.bandwidth().kernel(k),
                                              tool.options().slice_interval);
    std::printf("  %-6s active %3llu slices (%llu-%llu)  avg rd %.3f  avg wr %.3f"
                "  peak %.3f\n",
                tool.kernel_name(k).c_str(),
                static_cast<unsigned long long>(stats.activity_span),
                static_cast<unsigned long long>(stats.first_slice),
                static_cast<unsigned long long>(stats.last_slice),
                stats.avg_read_incl, stats.avg_write_incl, stats.max_rw_incl);
  }
  return 0;
}
