// The paper's Section V case study end to end: profile the hArtes-wfs
// reimplementation with all three tools and print every analysis —
// gprof-style flat profile, QUAD producer/consumer summary, tQUAD bandwidth
// time series, and the detected execution phases.
//
//   ./build/examples/wfs_case_study                 # standard workload
//   ./build/examples/wfs_case_study -tiny           # fast run
//   ./build/examples/wfs_case_study -slice 1000     # finer time slices
#include <cstdio>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "quad/quad_tool.hpp"
#include "support/ascii_chart.hpp"
#include "support/cli.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("wfs_case_study: the full Section V analysis pipeline");
  cli.add_flag("tiny", false, "use the tiny configuration");
  cli.add_int("slice", 5000, "tQUAD slice interval");
  cli.add_flag("verify", true, "check the audio output against the golden model");
  try {
    cli.parse(argc, argv);
  } catch (const Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }
  const wfs::WfsConfig cfg =
      cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();

  // --- step 1: gprof-style flat profile (find the top kernels) --------------
  std::printf("=== step 1: flat profile (gsim) ===\n");
  {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    gprof::GprofTool tool(engine, {});
    engine.run();
    std::fputs(tool.flat_profile_table().to_ascii().c_str(), stdout);
  }

  // --- step 2: QUAD data-communication overview ------------------------------
  std::printf("\n=== step 2: QUAD producer/consumer bindings (top 10 by bytes) ===\n");
  {
    wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
    pin::Engine engine(run.artifacts.program, run.host);
    quad::QuadTool tool(engine);
    engine.run();
    const auto edges = tool.bindings();
    for (std::size_t i = 0; i < edges.size() && i < 10; ++i) {
      std::printf("  %-24s -> %-24s %s\n",
                  tool.kernel_name(edges[i].producer).c_str(),
                  tool.kernel_name(edges[i].consumer).c_str(),
                  format_bytes(edges[i].bytes).c_str());
    }
  }

  // --- step 3: tQUAD temporal bandwidth + phases -----------------------------
  std::printf("\n=== step 3: tQUAD temporal analysis ===\n");
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::Options options;
  options.slice_interval = static_cast<std::uint64_t>(cli.integer("slice"));
  tquad::TQuadTool tool(engine, options);
  engine.run();

  std::printf("kernel activity over time (read+write bytes per slice):\n");
  std::vector<ChartSeries> series;
  for (const auto& row : tquad::flat_profile(tool)) {
    if (series.size() == 8 || row.name == "main") continue;
    series.push_back(ChartSeries{
        row.name, tquad::dense_series(tool, row.kernel,
                                      tquad::Metric::kReadWriteIncl)});
  }
  std::fputs(render_heat_strips(series).c_str(), stdout);

  const auto phases = tquad::detect_phases(tool);
  std::printf("\ndetected phases:\n%s", tquad::describe_phases(tool, phases).c_str());

  // --- step 4: validate the audio output -------------------------------------
  if (cli.flag("verify")) {
    const wfs::GoldenResult golden = wfs::run_golden(cfg, run.input);
    const wfs::WavData out = run.decode_output();
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < out.samples.size(); ++i) {
      if (out.samples[i] != golden.output[i]) ++mismatches;
    }
    std::printf("\naudio validation: %zu of %zu samples differ from the golden "
                "model (%s)\n",
                mismatches, out.samples.size(),
                mismatches == 0 ? "bit-exact" : "MISMATCH");
  }
  return 0;
}
